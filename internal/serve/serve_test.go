package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fdr"
	"repro/internal/msdata"
	"repro/internal/spectrum"
)

// testEngine builds a small exact engine and the workload it serves.
func testEngine(t testing.TB) (*core.Engine, []*spectrum.Spectrum) {
	t.Helper()
	ds, err := msdata.Generate(msdata.IPRG2012(0.001))
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.Accel.D = 1024
	p.Accel.NumChunks = 64
	engine, _, err := core.BuildExact(p, ds.Library)
	if err != nil {
		t.Fatal(err)
	}
	return engine, ds.Queries
}

// TestSearchMatchesEngine pins the serving contract: results from
// concurrent coalesced searches are PSM-for-PSM identical to serial
// Engine.SearchOne, regardless of how requests landed in batches.
func TestSearchMatchesEngine(t *testing.T) {
	engine, queries := testEngine(t)
	want := make(map[string]fdr.PSM)
	wantOK := make(map[string]bool)
	for _, q := range queries {
		psm, ok, err := engine.SearchOne(q)
		if err != nil {
			t.Fatal(err)
		}
		wantOK[q.ID] = ok
		if ok {
			want[q.ID] = psm
		}
	}

	for _, cfg := range []Config{
		{MaxBatch: 4, MaxDelay: 200 * time.Microsecond},
		{MaxBatch: 64, MaxDelay: 5 * time.Millisecond},
	} {
		srv, err := New(engine, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		got := make(map[string]fdr.PSM)
		gotOK := make(map[string]bool)
		for _, q := range queries {
			wg.Add(1)
			go func(q *spectrum.Spectrum) {
				defer wg.Done()
				psm, ok, err := srv.Search(context.Background(), q)
				if err != nil {
					t.Errorf("Search(%s): %v", q.ID, err)
					return
				}
				mu.Lock()
				defer mu.Unlock()
				gotOK[q.ID] = ok
				if ok {
					got[q.ID] = psm
				}
			}(q)
		}
		wg.Wait()
		srv.Close()
		for id, ok := range wantOK {
			if gotOK[id] != ok {
				t.Fatalf("cfg %+v: query %s ok=%v, want %v", cfg, id, gotOK[id], ok)
			}
			if ok && got[id] != want[id] {
				t.Fatalf("cfg %+v: query %s PSM %+v, want %+v", cfg, id, got[id], want[id])
			}
		}
	}
}

// TestCascadeServeConcurrent pins the serving contract over a
// cascade-enabled engine under -race: concurrent coalesced searches
// through the two-tier pruned kernel (whose shard workers share
// atomic per-query pruning bounds) must be PSM-for-PSM identical to
// serial Engine.SearchOne, and the cascade telemetry must surface in
// Stats.
func TestCascadeServeConcurrent(t *testing.T) {
	ds, err := msdata.Generate(msdata.IPRG2012(0.001))
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.Accel.D = 1024
	p.Accel.NumChunks = 64
	p.PrefilterWords = 2
	engine, _, err := core.BuildExact(p, ds.Library)
	if err != nil {
		t.Fatal(err)
	}
	queries := ds.Queries

	want := make(map[string]fdr.PSM)
	wantOK := make(map[string]bool)
	for _, q := range queries {
		psm, ok, err := engine.SearchOne(q)
		if err != nil {
			t.Fatal(err)
		}
		wantOK[q.ID] = ok
		if ok {
			want[q.ID] = psm
		}
	}

	srv, err := New(engine, Config{MaxBatch: 8, MaxDelay: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const rounds = 3 // repeat so requests land in varying batch shapes
	var wg sync.WaitGroup
	var mu sync.Mutex
	failed := false
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q *spectrum.Spectrum) {
				defer wg.Done()
				psm, ok, err := srv.Search(context.Background(), q)
				mu.Lock()
				defer mu.Unlock()
				if failed {
					return
				}
				switch {
				case err != nil:
					failed = true
					t.Errorf("Search(%s): %v", q.ID, err)
				case ok != wantOK[q.ID]:
					failed = true
					t.Errorf("query %s: ok=%v, serial says %v", q.ID, ok, wantOK[q.ID])
				case ok && psm != want[q.ID]:
					failed = true
					t.Errorf("query %s: cascade served %+v, serial %+v", q.ID, psm, want[q.ID])
				}
			}(q)
		}
	}
	wg.Wait()
	st := srv.Stats()
	if !st.CascadeEnabled || st.CascadePrefiltered == 0 {
		t.Fatalf("cascade telemetry missing from stats: %+v", st)
	}
	if st.CascadeCompleted > st.CascadePrefiltered {
		t.Fatalf("completed %d > prefiltered %d", st.CascadeCompleted, st.CascadePrefiltered)
	}
}

// TestCoalescing pins that concurrent requests actually share batches
// rather than degenerating to one flush per request.
func TestCoalescing(t *testing.T) {
	engine, queries := testEngine(t)
	const clients = 8
	srv, err := New(engine, Config{MaxBatch: clients, MaxDelay: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(q *spectrum.Spectrum) {
			defer wg.Done()
			if _, _, err := srv.Search(context.Background(), q); err != nil {
				t.Errorf("Search: %v", err)
			}
		}(queries[i])
	}
	wg.Wait()
	st := srv.Stats()
	if st.Completed == 0 {
		t.Fatal("no requests completed")
	}
	// All clients were in flight well within the 250ms window, so they
	// must have been scored in far fewer flushes than requests — with
	// the full-batch flush triggering at MaxBatch, typically exactly
	// one.
	if st.Batches >= st.Completed {
		t.Fatalf("no coalescing: %d batches for %d completed requests", st.Batches, st.Completed)
	}
	if st.MeanBatchSize <= 1 {
		t.Fatalf("mean batch size %.2f, want > 1", st.MeanBatchSize)
	}
}

// TestQueueFull pins admission control: with MaxQueue outstanding
// requests parked in the coalescing window, the next submission fails
// fast with ErrQueueFull.
func TestQueueFull(t *testing.T) {
	engine, queries := testEngine(t)
	srv, err := New(engine, Config{MaxBatch: 64, MaxDelay: time.Minute, MaxQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	prep := func(i int) core.PreparedQuery {
		for _, q := range queries[i:] {
			pq, ok, err := engine.Prepare(q)
			if err == nil && ok {
				return pq
			}
		}
		t.Fatal("no preparable query")
		return core.PreparedQuery{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		pq := prep(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Parked until cancel: the minute-long window keeps the batch open.
			srv.SearchPrepared(ctx, pq)
		}()
	}
	// Wait for both to be admitted.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().QueueDepth < 2 {
		if time.Now().After(deadline) {
			t.Fatal("requests never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := srv.SearchPrepared(context.Background(), prep(2)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third request got %v, want ErrQueueFull", err)
	}
	if srv.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
	cancel()
	wg.Wait()
}

// TestContextCancel pins that a waiter whose context ends stops
// waiting immediately and is counted as canceled.
func TestContextCancel(t *testing.T) {
	engine, queries := testEngine(t)
	srv, err := New(engine, Config{MaxBatch: 64, MaxDelay: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = srv.Search(ctx, queries[0])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("cancellation took %v", since)
	}
	if srv.Stats().Canceled != 1 {
		t.Fatalf("canceled count %d, want 1", srv.Stats().Canceled)
	}
}

// TestClose pins shutdown: queued requests are flushed, later ones
// get ErrClosed, and Close is idempotent.
func TestClose(t *testing.T) {
	engine, queries := testEngine(t)
	srv, err := New(engine, Config{MaxBatch: 64, MaxDelay: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	// A request parked in the coalescing window is still answered at
	// shutdown: Close drains and flushes before releasing waiters.
	type result struct {
		ok  bool
		err error
	}
	res := make(chan result, 1)
	go func() {
		_, ok, err := srv.Search(context.Background(), queries[0])
		res <- result{ok: ok, err: err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()
	r := <-res
	if r.err != nil {
		t.Fatalf("queued request got %v, want flushed result", r.err)
	}
	if _, _, err := srv.Search(context.Background(), queries[1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close search got %v, want ErrClosed", err)
	}
	srv.Close() // idempotent
}

// TestBatchHistogramBucketEdges pins the documented bucket contract:
// a batch of size exactly 2^i lands in the (2^(i-1), 2^i] bucket
// (reported as Le = 2^i), sizes one above a power of two land in the
// next bucket, and the bucket count covers MaxBatch so no in-range
// size overflows — across default, MaxBatch=1 and MaxBatch>MaxQueue
// configurations.
func TestBatchHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"default64", Config{MaxBatch: 64}},
		{"single", Config{MaxBatch: 1}},
		{"nonPow2", Config{MaxBatch: 33}},
		{"batchAboveQueue", Config{MaxBatch: 128, MaxQueue: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg.withDefaults()
			var c collector
			c.init(cfg)
			top := c.batchHist
			if maxLe := 1 << (len(top) - 1); maxLe < cfg.MaxBatch {
				t.Fatalf("top bucket Le=%d cannot hold MaxBatch=%d", maxLe, cfg.MaxBatch)
			}
			// Every boundary size the config can produce: exact powers
			// of two must land at Le = size, one above a power at the
			// next bucket.
			for size := 1; size <= cfg.MaxBatch; size++ {
				var fresh collector
				fresh.init(cfg)
				fresh.observeBatch(size, nil)
				st := fresh.snapshot(0)
				var le int
				for _, b := range st.BatchSizes {
					if b.Count == 1 {
						le = b.Le
					}
				}
				if le == 0 {
					t.Fatalf("size %d not counted in any bucket: %+v", size, st.BatchSizes)
				}
				if size > le || 2*size <= le {
					t.Fatalf("size %d landed in bucket Le=%d, want %d in (Le/2, Le]", size, le, size)
				}
				if size&(size-1) == 0 && le != size {
					t.Fatalf("power-of-two size %d landed at Le=%d, want Le=%d", size, le, size)
				}
			}
		})
	}
}

// TestStatsHistograms sanity-checks the histogram plumbing.
func TestStatsHistograms(t *testing.T) {
	engine, queries := testEngine(t)
	srv, err := New(engine, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, q := range queries {
		srv.Search(context.Background(), q)
	}
	st := srv.Stats()
	if st.Batches == 0 || st.Completed == 0 {
		t.Fatalf("stats did not accumulate: %+v", st)
	}
	var batchTotal uint64
	for _, b := range st.BatchSizes {
		batchTotal += b.Count
	}
	if batchTotal != st.Batches {
		t.Fatalf("batch histogram total %d != batches %d", batchTotal, st.Batches)
	}
	if st.LatencyP50 <= 0 || st.LatencyP99 < st.LatencyP50 {
		t.Fatalf("implausible latency quantiles p50=%v p99=%v", st.LatencyP50, st.LatencyP99)
	}
}

// TestCloseRacesEnqueue drains the queue-vs-Close race: many
// goroutines submit searches while Close runs concurrently. Every
// request must resolve exactly one way — a real result, ErrClosed, or
// ErrQueueFull — with no hangs, no panics, and every request admitted
// before the drain completing with a correct result; and Close must
// return with the dispatcher fully stopped no matter how the race
// lands. Run under -race in CI.
func TestCloseRacesEnqueue(t *testing.T) {
	engine, queries := testEngine(t)
	want := make(map[string]fdr.PSM)
	wantOK := make(map[string]bool)
	for _, q := range queries {
		psm, ok, err := engine.SearchOne(q)
		if err != nil {
			t.Fatal(err)
		}
		wantOK[q.ID] = ok
		if ok {
			want[q.ID] = psm
		}
	}
	for round := 0; round < 8; round++ {
		srv, err := New(engine, Config{MaxBatch: 8, MaxDelay: 100 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		results := make([]error, len(queries)*2)
		for g := 0; g < 2; g++ {
			for qi, q := range queries {
				wg.Add(1)
				go func(slot int, q *spectrum.Spectrum) {
					defer wg.Done()
					psm, ok, err := srv.Search(context.Background(), q)
					results[slot] = err
					if err == nil {
						// A delivered result must be the engine's, drained
						// batches included.
						if ok != wantOK[q.ID] || (ok && psm != want[q.ID]) {
							t.Errorf("round %d: query %s served %+v ok=%v, want %+v ok=%v",
								round, q.ID, psm, ok, want[q.ID], wantOK[q.ID])
						}
					}
				}(g*len(queries)+qi, q)
			}
		}
		// Close concurrently with the submissions — sometimes before
		// the batcher has flushed anything, sometimes mid-drain.
		if round%2 == 0 {
			runtime.Gosched()
		}
		srv.Close()
		wg.Wait()
		for slot, err := range results {
			if err == nil {
				continue
			}
			if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrQueueFull) {
				t.Fatalf("round %d: slot %d resolved with unexpected error %v", round, slot, err)
			}
		}
		// Idempotent double-close must not deadlock or panic.
		srv.Close()
	}
}
