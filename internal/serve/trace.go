package serve

import (
	"context"
	"sort"

	"repro/internal/obsv"
)

// reqIDKey is the context key WithRequestID stores under.
type reqIDKey struct{}

// WithRequestID attaches a request ID (e.g. a propagated X-Request-ID)
// to the context; requests submitted under it carry the ID in their
// trace record, joining the access log to /debug/slowest.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom returns the request ID attached by WithRequestID, or
// "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// Slowest returns the worst-latency query traces the server has
// retained (at most Config.SlowRingSize), sorted by total latency
// descending. Every completed request competes for a slot regardless
// of SlowQueryThreshold, so the ring is useful before any query
// crosses the threshold.
func (s *Server) Slowest() []obsv.QueryTrace {
	out := s.stats.slowestSnapshot()
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}
