package serve

import (
	"sync"
	"time"
)

// Stats is a snapshot of the serving counters.
type Stats struct {
	// Requests counts every submission exactly once: queries that fail
	// preparation (Skipped/Errors) plus every admission attempt,
	// counted when it enters SearchPrepared.
	Requests uint64
	// Completed counts requests whose batch delivered a result —
	// including waiters that had already given up, so a cancellation
	// racing the scoring sweep may appear in both Completed and
	// Canceled.
	Completed uint64
	// Matched counts completed requests that produced a PSM.
	Matched uint64
	// Skipped counts queries rejected before batching: failed
	// preprocessing or an empty precursor window.
	Skipped uint64
	// Rejected counts admission-control rejections (ErrQueueFull).
	Rejected uint64
	// Canceled counts waiters whose context ended before they received
	// a result.
	Canceled uint64
	// Closed counts requests released by server shutdown.
	Closed uint64
	// Errors counts query encoding failures.
	Errors uint64
	// Batches counts flushed batches.
	Batches uint64
	// QueueDepth is the number of requests outstanding right now.
	QueueDepth int
	// MeanBatchSize is Completed / Batches.
	MeanBatchSize float64
	// BatchSizes is the batch-size histogram in power-of-two buckets:
	// BatchSizes[i] counts batches with size in (2^(i-1), 2^i].
	BatchSizes []BucketCount
	// LatencyP50 and LatencyP99 are approximate request latency
	// quantiles (enqueue → batch scored), resolved to the upper bound
	// of exponential histogram buckets.
	LatencyP50, LatencyP99 time.Duration
	// CascadeEnabled reports whether the engine's searcher runs the
	// two-tier pruned cascade layout; the counters below are zero when
	// it does not.
	CascadeEnabled bool
	// CascadePrefiltered counts reference rows whose prefilter tier
	// was scored; CascadeCompleted counts the rows whose completion
	// tier was also scored (the prune survivors).
	CascadePrefiltered, CascadeCompleted uint64
	// CascadePruneRate is the fraction of prefiltered rows the cascade
	// never completed.
	CascadePruneRate float64
}

// BucketCount is one histogram bucket: Count observations with value
// at most Le (and greater than the previous bucket's Le).
type BucketCount struct {
	Le    int    `json:"le"`
	Count uint64 `json:"count"`
}

// latency histogram buckets: powers of two from 1µs to ~8.6s, with a
// final overflow bucket.
const latBuckets = 24

// collector accumulates the counters. Counter increments come from
// many goroutines; histogram writes come only from the dispatcher.
// One mutex keeps it simple — none of this is on the per-word hot
// path, and a flush touches it once per batch.
type collector struct {
	mu sync.Mutex

	requests, completed, matched uint64
	skipped, rejected, canceled  uint64
	closed, errors, batches      uint64

	batchHist []uint64 // power-of-two buckets, index i ⇒ size ≤ 2^i
	latHist   [latBuckets + 1]uint64
}

func (c *collector) init(cfg Config) {
	buckets := 1
	for 1<<buckets < cfg.MaxBatch {
		buckets++
	}
	c.batchHist = make([]uint64, buckets+1)
}

// admit counts one submission entering SearchPrepared; all later
// outcomes (rejected, canceled, closed, completed) refer back to it.
func (c *collector) admit() {
	c.mu.Lock()
	c.requests++
	c.mu.Unlock()
}

func (c *collector) reject() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}

func (c *collector) cancel() {
	c.mu.Lock()
	c.canceled++
	c.mu.Unlock()
}

func (c *collector) closedReject() {
	c.mu.Lock()
	c.closed++
	c.mu.Unlock()
}

func (c *collector) skip() {
	c.mu.Lock()
	c.requests++
	c.skipped++
	c.mu.Unlock()
}

func (c *collector) prepareError() {
	c.mu.Lock()
	c.requests++
	c.errors++
	c.mu.Unlock()
}

// observeRequest records one delivered result and its latency.
func (c *collector) observeRequest(lat time.Duration, matched bool) {
	c.mu.Lock()
	c.completed++
	if matched {
		c.matched++
	}
	us := lat.Microseconds()
	b := 0
	for b < latBuckets && us > 1<<b {
		b++
	}
	c.latHist[b]++
	c.mu.Unlock()
}

// observeBatch records one flushed batch of the given size.
func (c *collector) observeBatch(size int) {
	c.mu.Lock()
	c.batches++
	b := 0
	for b < len(c.batchHist)-1 && size > 1<<b {
		b++
	}
	c.batchHist[b]++
	c.mu.Unlock()
}

// snapshot assembles a Stats under the lock.
func (c *collector) snapshot(queueDepth int) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Requests:   c.requests,
		Completed:  c.completed,
		Matched:    c.matched,
		Skipped:    c.skipped,
		Rejected:   c.rejected,
		Canceled:   c.canceled,
		Closed:     c.closed,
		Errors:     c.errors,
		Batches:    c.batches,
		QueueDepth: queueDepth,
	}
	if c.batches > 0 {
		st.MeanBatchSize = float64(c.completed) / float64(c.batches)
	}
	for i, n := range c.batchHist {
		st.BatchSizes = append(st.BatchSizes, BucketCount{Le: 1 << i, Count: n})
	}
	st.LatencyP50 = latQuantile(&c.latHist, 0.50)
	st.LatencyP99 = latQuantile(&c.latHist, 0.99)
	return st
}

// latQuantile resolves quantile q against the latency histogram,
// returning the upper bound of the bucket where the cumulative count
// crosses q.
func latQuantile(hist *[latBuckets + 1]uint64, q float64) time.Duration {
	var total uint64
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for b, n := range hist {
		cum += n
		if cum > rank {
			if b >= latBuckets {
				b = latBuckets // overflow bucket reports the cap
			}
			return time.Duration(1<<b) * time.Microsecond
		}
	}
	return time.Duration(1<<latBuckets) * time.Microsecond
}
