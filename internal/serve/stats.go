package serve

import (
	"sync"
	"time"

	"repro/internal/obsv"
)

// Stats is a snapshot of the serving counters.
type Stats struct {
	// Requests counts every submission exactly once: queries that fail
	// preparation (Skipped/Errors) plus every admission attempt,
	// counted when it enters SearchPrepared.
	Requests uint64
	// Completed counts requests whose batch delivered a result —
	// including waiters that had already given up, so a cancellation
	// racing the scoring sweep may appear in both Completed and
	// Canceled.
	Completed uint64
	// Matched counts completed requests that produced a PSM.
	Matched uint64
	// Skipped counts queries rejected before batching: failed
	// preprocessing or an empty precursor window.
	Skipped uint64
	// Rejected counts admission-control rejections (ErrQueueFull).
	Rejected uint64
	// Canceled counts waiters whose context ended before they received
	// a result.
	Canceled uint64
	// Closed counts requests released by server shutdown.
	Closed uint64
	// Errors counts query encoding failures.
	Errors uint64
	// Batches counts flushed batches.
	Batches uint64
	// QueueDepth is the number of requests outstanding right now.
	QueueDepth int
	// MeanBatchSize is Completed / Batches.
	MeanBatchSize float64
	// BatchSizes is the batch-size histogram in power-of-two buckets:
	// BatchSizes[i] counts batches with size in (2^(i-1), 2^i].
	BatchSizes []BucketCount
	// LatencyP50 and LatencyP99 are approximate request latency
	// quantiles (enqueue → batch scored), resolved to the upper bound
	// of exponential histogram buckets.
	LatencyP50, LatencyP99 time.Duration
	// LatencyBuckets is the raw latency histogram: power-of-two
	// microsecond buckets, LatencyBuckets[i] counting requests with
	// latency in (2^(i-1), 2^i] µs, plus a final overflow bucket.
	LatencyBuckets []BucketCount
	// LatencySum is the total enqueue→scored latency across completed
	// requests — with Completed, the histogram's _sum/_count pair.
	LatencySum time.Duration
	// StageTotals is the cumulative per-stage time across all traced
	// requests/batches, one entry per obsv stage in stage order.
	StageTotals []StageTotal
	// TierTotals is the cumulative per-cascade-tier sweep time across
	// traced batches, one entry per observed ladder tier in tier order
	// (empty under a single-tier layout or when nothing was traced).
	TierTotals []StageTotal
	// RowsSwept and RowsCompleted are the cumulative candidate-row
	// counters of the traced sweeps (tier-0 swept rows, and final-tier
	// completions under a cascade).
	RowsSwept, RowsCompleted uint64
	// SlowQueries counts requests at or above Config.SlowQueryThreshold
	// (0 while the threshold is unset).
	SlowQueries uint64
	// CascadeEnabled reports whether the engine's searcher runs a
	// multi-tier pruned cascade layout; the counters below are zero
	// when it does not.
	CascadeEnabled bool
	// CascadePrefiltered counts reference rows whose first (tier-0)
	// ladder tier was scored; CascadeCompleted counts the rows that
	// descended all the way to the final tier (the prune survivors).
	CascadePrefiltered, CascadeCompleted uint64
	// CascadePruneRate is the fraction of tier-0 rows the cascade
	// never completed.
	CascadePruneRate float64
	// CascadeTierRows[t] counts rows entering ladder tier t (TierRows[0]
	// == CascadePrefiltered, last == CascadeCompleted).
	CascadeTierRows []uint64
	// CascadeTierPruneRates[t] is the fraction of tier-t rows pruned
	// before reaching tier t+1 (one entry per non-final tier).
	CascadeTierPruneRates []float64
}

// BucketCount is one histogram bucket: Count observations with value
// at most Le (and greater than the previous bucket's Le).
type BucketCount struct {
	Le    int    `json:"le"`
	Count uint64 `json:"count"`
}

// StageTotal is one pipeline stage's cumulative time.
type StageTotal struct {
	Stage string `json:"stage"`
	Nanos int64  `json:"nanos"`
}

// latency histogram buckets: powers of two from 1µs to ~8.6s, with a
// final overflow bucket.
const latBuckets = 24

// collector accumulates the counters. Counter increments come from
// many goroutines; histogram writes come only from the dispatcher.
// One mutex keeps it simple — none of this is on the per-word hot
// path, and a flush touches it once per batch.
type collector struct {
	mu sync.Mutex

	requests, completed, matched uint64
	skipped, rejected, canceled  uint64
	closed, errors, batches      uint64

	batchHist []uint64 // power-of-two buckets, index i ⇒ size ≤ 2^i
	latHist   [latBuckets + 1]uint64

	latSumNanos int64
	stageNanos  [obsv.NumStages]int64
	tierNanos   [obsv.MaxTierSlots]int64
	ntiers      int
	rowsSwept   uint64
	rowsDone    uint64
	slow        uint64

	// ring holds the worst-latency query traces (preallocated to
	// SlowRingSize once; inserts replace the current minimum), and
	// slowThresh mirrors Config.SlowQueryThreshold.
	ring       []obsv.QueryTrace
	slowThresh time.Duration
}

func (c *collector) init(cfg Config) {
	buckets := 1
	for 1<<buckets < cfg.MaxBatch {
		buckets++
	}
	c.batchHist = make([]uint64, buckets+1)
	rs := cfg.SlowRingSize
	if rs <= 0 {
		rs = 16
	}
	c.ring = make([]obsv.QueryTrace, 0, rs)
	c.slowThresh = cfg.SlowQueryThreshold
}

// admit counts one submission entering SearchPrepared; all later
// outcomes (rejected, canceled, closed, completed) refer back to it.
func (c *collector) admit() {
	c.mu.Lock()
	c.requests++
	c.mu.Unlock()
}

func (c *collector) reject() {
	c.mu.Lock()
	c.rejected++
	c.mu.Unlock()
}

func (c *collector) cancel() {
	c.mu.Lock()
	c.canceled++
	c.mu.Unlock()
}

func (c *collector) closedReject() {
	c.mu.Lock()
	c.closed++
	c.mu.Unlock()
}

func (c *collector) skip() {
	c.mu.Lock()
	c.requests++
	c.skipped++
	c.mu.Unlock()
}

func (c *collector) prepareError() {
	c.mu.Lock()
	c.requests++
	c.errors++
	c.mu.Unlock()
}

// observeRequest records one delivered result: latency histogram and
// sum, the request's own trace stages (queue wait, encode), the
// slow-query counter, and a slow-ring slot when the trace is among the
// worst seen. It reports whether the request crossed the slow
// threshold so the dispatcher can fire OnSlowQuery outside the lock.
func (c *collector) observeRequest(lat time.Duration, matched bool, qt *obsv.QueryTrace) bool {
	c.mu.Lock()
	c.completed++
	if matched {
		c.matched++
	}
	us := lat.Microseconds()
	b := 0
	for b < latBuckets && us > 1<<b {
		b++
	}
	c.latHist[b]++
	c.latSumNanos += int64(lat)
	c.stageNanos[obsv.StageQueueWait] += qt.StageNanos[obsv.StageQueueWait]
	c.stageNanos[obsv.StageEncode] += qt.StageNanos[obsv.StageEncode]
	slow := c.slowThresh > 0 && lat >= c.slowThresh
	if slow {
		c.slow++
	}
	c.ringOffer(qt)
	c.mu.Unlock()
	return slow
}

// ringOffer inserts a trace into the worst-latency ring: free slots
// fill first, then the trace replaces the current minimum if it is
// worse. The ring is preallocated, so an offer never allocates; the
// O(SlowRingSize) scan runs under the collector lock once per request.
func (c *collector) ringOffer(qt *obsv.QueryTrace) {
	if cap(c.ring) == 0 {
		return
	}
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, *qt)
		return
	}
	minI := 0
	for i := 1; i < len(c.ring); i++ {
		if c.ring[i].Total < c.ring[minI].Total {
			minI = i
		}
	}
	if qt.Total > c.ring[minI].Total {
		c.ring[minI] = *qt
	}
}

// slowestSnapshot copies the slow ring out under the lock (unsorted).
func (c *collector) slowestSnapshot() []obsv.QueryTrace {
	c.mu.Lock()
	out := make([]obsv.QueryTrace, len(c.ring))
	copy(out, c.ring)
	c.mu.Unlock()
	return out
}

// observeBatch records one flushed batch: its size and the batch-level
// trace stages (assemble, sweep, tier/merge detail) plus row counters.
func (c *collector) observeBatch(size int, tr *obsv.Trace) {
	c.mu.Lock()
	c.batches++
	b := 0
	for b < len(c.batchHist)-1 && size > 1<<b {
		b++
	}
	c.batchHist[b]++
	for s := obsv.StageAssemble; s < obsv.NumStages; s++ {
		c.stageNanos[s] += tr.StageNanos(s)
	}
	if n := tr.NumTiers(); n > 0 {
		if n > c.ntiers {
			c.ntiers = n
		}
		for t := 0; t < n; t++ {
			c.tierNanos[t] += tr.TierNanos(t)
		}
	}
	swept, done := tr.Rows()
	c.rowsSwept += uint64(swept)
	c.rowsDone += uint64(done)
	c.mu.Unlock()
}

// snapshot assembles a Stats under the lock.
func (c *collector) snapshot(queueDepth int) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Requests:   c.requests,
		Completed:  c.completed,
		Matched:    c.matched,
		Skipped:    c.skipped,
		Rejected:   c.rejected,
		Canceled:   c.canceled,
		Closed:     c.closed,
		Errors:     c.errors,
		Batches:    c.batches,
		QueueDepth: queueDepth,
	}
	if c.batches > 0 {
		st.MeanBatchSize = float64(c.completed) / float64(c.batches)
	}
	for i, n := range c.batchHist {
		st.BatchSizes = append(st.BatchSizes, BucketCount{Le: 1 << i, Count: n})
	}
	st.LatencyP50 = latQuantile(&c.latHist, 0.50)
	st.LatencyP99 = latQuantile(&c.latHist, 0.99)
	for i, n := range c.latHist {
		st.LatencyBuckets = append(st.LatencyBuckets, BucketCount{Le: 1 << i, Count: n})
	}
	st.LatencySum = time.Duration(c.latSumNanos)
	for s := obsv.Stage(0); s < obsv.NumStages; s++ {
		st.StageTotals = append(st.StageTotals, StageTotal{Stage: s.String(), Nanos: c.stageNanos[s]})
	}
	for t := 0; t < c.ntiers; t++ {
		st.TierTotals = append(st.TierTotals, StageTotal{Stage: obsv.TierName(t), Nanos: c.tierNanos[t]})
	}
	st.RowsSwept = c.rowsSwept
	st.RowsCompleted = c.rowsDone
	st.SlowQueries = c.slow
	return st
}

// latQuantile resolves quantile q against the latency histogram,
// returning the upper bound of the bucket where the cumulative count
// crosses q.
func latQuantile(hist *[latBuckets + 1]uint64, q float64) time.Duration {
	var total uint64
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for b, n := range hist {
		cum += n
		if cum > rank {
			if b >= latBuckets {
				b = latBuckets // overflow bucket reports the cap
			}
			return time.Duration(1<<b) * time.Microsecond
		}
	}
	return time.Duration(1<<latBuckets) * time.Microsecond
}
