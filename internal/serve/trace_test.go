package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/obsv"
)

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestIDFrom(ctx); got != "" {
		t.Fatalf("empty context carries request id %q", got)
	}
	ctx2 := WithRequestID(ctx, "req-42")
	if got := RequestIDFrom(ctx2); got != "req-42" {
		t.Fatalf("RequestIDFrom = %q, want req-42", got)
	}
	// Attaching the empty ID is a no-op, not a shadowing overwrite.
	if got := RequestIDFrom(WithRequestID(ctx2, "")); got != "req-42" {
		t.Fatalf("empty WithRequestID overwrote id: %q", got)
	}
}

// TestTraceRecordsReachRing drives real searches and checks that the
// slow ring captured traces with coherent identity and stage timings.
func TestTraceRecordsReachRing(t *testing.T) {
	engine, queries := testEngine(t)
	srv, err := New(engine, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := WithRequestID(context.Background(), "req-ring")
	for _, q := range queries {
		srv.Search(ctx, q)
	}
	traces := srv.Slowest()
	if len(traces) == 0 {
		t.Fatal("no traces captured")
	}
	for i, qt := range traces {
		if i > 0 && qt.Total > traces[i-1].Total {
			t.Fatalf("Slowest not sorted: trace %d total %v above %v", i, qt.Total, traces[i-1].Total)
		}
		if qt.QueryID == "" {
			t.Fatalf("trace %d has no query id", i)
		}
		if qt.RequestID != "req-ring" {
			t.Fatalf("trace %d request id %q, want req-ring", i, qt.RequestID)
		}
		if qt.BatchID == 0 || qt.BatchSize < 1 {
			t.Fatalf("trace %d batch identity missing: id=%d size=%d", i, qt.BatchID, qt.BatchSize)
		}
		if qt.Total <= 0 {
			t.Fatalf("trace %d total %v", i, qt.Total)
		}
		// The sweep stage brackets the engine call; it must have
		// recorded something for a batch that actually searched.
		if qt.Stage(obsv.StageSweep) <= 0 {
			t.Fatalf("trace %d recorded no sweep time: %+v", i, qt.StageNanos)
		}
		var stageSum time.Duration
		for s := obsv.Stage(0); s < obsv.NumStages; s++ {
			stageSum += qt.Stage(s)
		}
		if stageSum <= 0 {
			t.Fatalf("trace %d has empty stage breakdown", i)
		}
	}
}

// TestSlowRingKeepsWorst floods a tiny ring and verifies replace-min:
// the ring holds the N worst totals seen, not the N most recent.
func TestSlowRingKeepsWorst(t *testing.T) {
	var c collector
	c.init(Config{SlowRingSize: 3}.withDefaults())
	totals := []time.Duration{5, 1, 9, 2, 7, 3, 8} // ring should end with 9, 8, 7
	for i, total := range totals {
		qt := obsv.QueryTrace{QueryID: "q", BatchID: uint64(i + 1), Total: total}
		c.mu.Lock()
		c.ringOffer(&qt)
		c.mu.Unlock()
	}
	got := map[time.Duration]bool{}
	for _, qt := range c.slowestSnapshot() {
		got[qt.Total] = true
	}
	for _, want := range []time.Duration{9, 8, 7} {
		if !got[want] {
			t.Fatalf("ring lost total %v: kept %v", want, got)
		}
	}
	if len(got) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(got))
	}
}

// TestSlowQueryCallback pins the -slow-query plumbing: with a
// threshold of 1ns every completed request is slow, the callback
// fires on the dispatcher goroutine with a populated trace, and the
// SlowQueries counter matches.
func TestSlowQueryCallback(t *testing.T) {
	engine, queries := testEngine(t)
	var mu sync.Mutex
	var seen []obsv.QueryTrace
	srv, err := New(engine, Config{
		MaxBatch:           4,
		MaxDelay:           time.Millisecond,
		SlowQueryThreshold: time.Nanosecond,
		OnSlowQuery: func(qt obsv.QueryTrace) {
			mu.Lock()
			seen = append(seen, qt)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	completed := 0
	for _, q := range queries {
		if _, _, err := srv.Search(context.Background(), q); err == nil {
			completed++
		}
	}
	st := srv.Stats()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != completed {
		t.Fatalf("callback fired %d times for %d completed requests", len(seen), completed)
	}
	if st.SlowQueries != uint64(completed) {
		t.Fatalf("SlowQueries = %d, want %d", st.SlowQueries, completed)
	}
	for i, qt := range seen {
		if qt.QueryID == "" || qt.Total <= 0 {
			t.Fatalf("callback trace %d incomplete: %+v", i, qt)
		}
	}
}

// TestNoThresholdNoCallback: with no threshold the ring still fills
// but nothing is counted slow.
func TestNoThresholdNoCallback(t *testing.T) {
	engine, queries := testEngine(t)
	called := false
	srv, err := New(engine, Config{
		MaxBatch:    4,
		MaxDelay:    time.Millisecond,
		OnSlowQuery: func(obsv.QueryTrace) { called = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, q := range queries {
		srv.Search(context.Background(), q)
	}
	if called {
		t.Fatal("OnSlowQuery fired without a threshold")
	}
	st := srv.Stats()
	if st.SlowQueries != 0 {
		t.Fatalf("SlowQueries = %d without a threshold", st.SlowQueries)
	}
	if len(srv.Slowest()) == 0 {
		t.Fatal("ring empty: every request competes regardless of threshold")
	}
}

// TestStageTotalsAccumulate checks the Stats stage rollup: totals
// appear in stage order, sweep time is nonzero after real traffic,
// and rows counters move when the engine reports them.
func TestStageTotalsAccumulate(t *testing.T) {
	engine, queries := testEngine(t)
	srv, err := New(engine, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, q := range queries {
		srv.Search(context.Background(), q)
	}
	st := srv.Stats()
	if len(st.StageTotals) != int(obsv.NumStages) {
		t.Fatalf("%d stage totals, want %d", len(st.StageTotals), obsv.NumStages)
	}
	byStage := map[string]int64{}
	for i, s := range st.StageTotals {
		if want := obsv.Stage(i).String(); s.Stage != want {
			t.Fatalf("stage %d named %q, want %q", i, s.Stage, want)
		}
		if s.Nanos < 0 {
			t.Fatalf("stage %q negative: %d", s.Stage, s.Nanos)
		}
		byStage[s.Stage] = s.Nanos
	}
	if byStage["sweep"] <= 0 {
		t.Fatalf("no sweep time accumulated: %+v", st.StageTotals)
	}
	if st.LatencySum <= 0 {
		t.Fatalf("latency sum %v after %d requests", st.LatencySum, st.Completed)
	}
	// The exact engine over a packed store runs the traced range path,
	// so row counters must have moved.
	if st.RowsSwept == 0 {
		t.Fatal("no rows swept recorded")
	}
}
