// Package serve is the request-coalescing serving layer over the OMS
// engine: it accepts individual Search calls from arbitrarily many
// concurrent goroutines, collects them for a bounded window (max-batch
// size / max-delay), and flushes each batch through one block-major
// batched top-k sweep — turning N concurrent single-query requests
// into the same once-per-batch memory stream the offline batch path
// enjoys. The paper's deployment story is a resident accelerator that
// amortizes one expensive library write across millions of searches;
// this package is the software articulation of that story's serving
// half.
//
// Guarantees:
//
//   - With a deterministic searcher (the exact sharded engine — what
//     omsd runs) per-request results are bit-identical to
//     Engine.SearchOne: a query's PSM does not depend on which batch
//     it lands in, on the batch's composition, or on its position
//     within the batch. An engine wired to a noisy searcher draws its
//     error stream in batch order, so its serving results vary with
//     traffic timing — acceptable for robustness studies, not for the
//     deterministic serving contract.
//   - Admission is bounded: at most MaxQueue requests are outstanding
//     (queued or being scored); beyond that Search fails fast with
//     ErrQueueFull instead of building an unbounded backlog.
//   - Every request carries a context: a caller that gives up stops
//     waiting immediately, and its slot is skipped at flush time if
//     the batch has not started scoring yet.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fdr"
	"repro/internal/obsv"
	"repro/internal/spectrum"
)

// ErrQueueFull is returned when admission control rejects a request
// because MaxQueue requests are already outstanding.
var ErrQueueFull = errors.New("serve: request queue full")

// ErrClosed is returned for requests submitted to (or still waiting
// on) a server that has been closed.
var ErrClosed = errors.New("serve: server closed")

// Config tunes the micro-batcher.
type Config struct {
	// MaxBatch flushes a batch as soon as it holds this many requests
	// (default 64 — one full sweep of queries per pass over the packed
	// store is the knee of the bandwidth-amortization curve).
	MaxBatch int
	// MaxDelay flushes a non-empty batch this long after its first
	// request arrived, bounding the latency cost of coalescing
	// (default 1ms).
	MaxDelay time.Duration
	// MaxQueue bounds outstanding requests — queued plus being scored
	// — for admission control (default 4096).
	MaxQueue int
	// SlowQueryThreshold marks a request slow when its enqueue→scored
	// latency reaches it, counting it in Stats.SlowQueries and firing
	// OnSlowQuery. 0 disables the threshold (the slow ring still keeps
	// the worst traces).
	SlowQueryThreshold time.Duration
	// SlowRingSize is how many worst-latency query traces the server
	// retains for Slowest (default 16).
	SlowRingSize int
	// OnSlowQuery, when set, is called from the dispatcher goroutine
	// with a copy of each threshold-exceeding trace — keep it cheap
	// (e.g. one structured log line); it runs between batches.
	OnSlowQuery func(obsv.QueryTrace)
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Millisecond
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4096
	}
	if c.SlowRingSize <= 0 {
		c.SlowRingSize = 16
	}
	return c
}

// response is what a flushed batch delivers back to one waiter.
type response struct {
	psm fdr.PSM
	ok  bool
}

// request is one queued search: a prepared query plus the plumbing to
// deliver its result.
type request struct {
	pq       core.PreparedQuery
	ctx      context.Context
	enqueued time.Time
	// encNanos is the caller-side preparation time (preprocess + encode
	// + range resolution) and reqID the propagated request ID; both feed
	// the request's trace record.
	encNanos int64
	reqID    string
	// out is buffered (capacity 1) so the dispatcher never blocks on a
	// waiter that already gave up.
	out chan response
}

// Server coalesces concurrent searches into batched engine sweeps.
type Server struct {
	engine core.SearchEngine
	cfg    Config

	in   chan *request
	quit chan struct{}
	done chan struct{}

	// pending counts outstanding requests for admission control.
	pending atomic.Int64

	closeOnce sync.Once
	stats     collector

	// preps is the flush loop's reusable prepared-query scratch. Only
	// the dispatcher goroutine touches it, so no lock: it grows to
	// MaxBatch once and steady-state flushes allocate nothing.
	preps []core.PreparedQuery

	// traced is the engine's tracing surface when it has one (the
	// single-store and partitioned engines do), nil otherwise — a nil
	// traced falls back to the untraced sweep with batch-level stages
	// only.
	traced core.TracedSearchEngine
	// trace and qt are the dispatcher-owned tracing scratch: one Trace
	// reset per flush (no allocation per batch) and one QueryTrace
	// record reused per delivered request. batchSeq numbers flushes for
	// the access-log ↔ slow-trace join.
	trace    obsv.Trace
	qt       obsv.QueryTrace
	batchSeq uint64
}

// New starts the micro-batcher over an engine — the single-store
// exact engine or the partitioned engine over a mmap-backed manifest;
// anything satisfying core.SearchEngine. The returned server must be
// Closed to stop its dispatcher goroutine.
func New(engine core.SearchEngine, cfg Config) (*Server, error) {
	if engine == nil {
		return nil, fmt.Errorf("serve: nil engine")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		engine: engine,
		cfg:    cfg,
		in:     make(chan *request, cfg.MaxQueue),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if te, ok := engine.(core.TracedSearchEngine); ok {
		s.traced = te
	}
	s.stats.init(cfg)
	go s.dispatch()
	return s, nil
}

// Engine returns the underlying engine.
func (s *Server) Engine() core.SearchEngine { return s.engine }

// Search prepares one query in the caller's goroutine (preprocessing,
// encoding and candidate-range selection parallelize naturally across
// clients) and submits it for batched scoring. ok is false when the
// query is rejected by preprocessing, finds no candidate in the
// precursor window, or finds no match — the same conditions as
// Engine.SearchOne. The error is non-nil for encoding failures,
// admission rejection (ErrQueueFull), cancellation (the context's
// error) and shutdown (ErrClosed).
func (s *Server) Search(ctx context.Context, q *spectrum.Spectrum) (fdr.PSM, bool, error) {
	encStart := time.Now()
	pq, ok, err := s.engine.Prepare(q)
	encNanos := int64(time.Since(encStart))
	if err != nil {
		s.stats.prepareError()
		return fdr.PSM{}, false, err
	}
	if !ok {
		s.stats.skip()
		return fdr.PSM{}, false, nil
	}
	return s.searchPrepared(ctx, pq, encNanos)
}

// SearchPrepared submits an already prepared query for batched
// scoring and blocks until its batch is flushed, the context is done,
// or the server closes. The query's trace records zero encode time
// (preparation happened outside the server); a request ID attached to
// ctx via WithRequestID is carried into the trace.
func (s *Server) SearchPrepared(ctx context.Context, pq core.PreparedQuery) (fdr.PSM, bool, error) {
	return s.searchPrepared(ctx, pq, 0)
}

// searchPrepared submits a prepared query with its caller-side encode
// time.
func (s *Server) searchPrepared(ctx context.Context, pq core.PreparedQuery, encNanos int64) (fdr.PSM, bool, error) {
	s.stats.admit()
	if n := s.pending.Add(1); n > int64(s.cfg.MaxQueue) {
		s.pending.Add(-1)
		s.stats.reject()
		return fdr.PSM{}, false, ErrQueueFull
	}
	defer s.pending.Add(-1)

	r := &request{pq: pq, ctx: ctx, enqueued: time.Now(), encNanos: encNanos,
		reqID: RequestIDFrom(ctx), out: make(chan response, 1)}
	select {
	case s.in <- r:
	case <-s.done:
		s.stats.closedReject()
		return fdr.PSM{}, false, ErrClosed
	default:
		// pending admits at most MaxQueue requests and the channel holds
		// MaxQueue, so the only way the send can fail is a dispatcher
		// mid-drain race; treat it as the bound it is.
		s.stats.reject()
		return fdr.PSM{}, false, ErrQueueFull
	}
	select {
	case resp := <-r.out:
		return resp.psm, resp.ok, nil
	case <-ctx.Done():
		s.stats.cancel()
		return fdr.PSM{}, false, ctx.Err()
	case <-s.done:
		// Close drains and flushes admitted requests before done
		// closes, so this request's result may already be waiting —
		// prefer it over ErrClosed (select picks ready cases at
		// random, so the race is real).
		select {
		case resp := <-r.out:
			return resp.psm, resp.ok, nil
		default:
		}
		s.stats.closedReject()
		return fdr.PSM{}, false, ErrClosed
	}
}

// Stats returns a snapshot of the serving counters, including the
// engine's per-tier cascade pruning telemetry when its searcher runs
// a multi-tier layout.
func (s *Server) Stats() Stats {
	st := s.stats.snapshot(int(s.pending.Load()))
	if cs, ok := s.engine.CascadeStats(); ok {
		st.CascadeEnabled = true
		st.CascadePrefiltered = cs.Prefiltered()
		st.CascadeCompleted = cs.Completed()
		st.CascadePruneRate = cs.PruneRate()
		st.CascadeTierRows = append([]uint64(nil), cs.TierRows...)
		for t := 0; t+1 < cs.NumTiers(); t++ {
			st.CascadeTierPruneRates = append(st.CascadeTierPruneRates, cs.TierPruneRate(t))
		}
	}
	return st
}

// Close stops the dispatcher after flushing every request already
// queued, then releases any remaining waiters with ErrClosed. It is
// idempotent and safe to call concurrently with Search.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.quit)
		<-s.done
	})
}

// dispatch is the coalescing loop: it owns the batch under
// construction and is the only goroutine that touches the engine's
// batch path, so a flush is one deterministic BatchTopKRange sweep.
func (s *Server) dispatch() {
	defer close(s.done)
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	var batch []*request
	flush := func() {
		s.flush(batch)
		batch = batch[:0]
	}
	for {
		select {
		case r := <-s.in:
			batch = append(batch, r)
			if len(batch) == 1 {
				timer.Reset(s.cfg.MaxDelay)
			}
			if len(batch) >= s.cfg.MaxBatch {
				// Go 1.23+ timer semantics: after Stop returns, no stale
				// expiry is delivered on timer.C, so the next batch
				// cannot be cut short by this window's timer. The
				// len(batch) guard below stays as defense in depth.
				timer.Stop()
				flush()
			}
		case <-timer.C:
			if len(batch) > 0 {
				flush()
			}
		case <-s.quit:
			// Drain whatever was admitted before shutdown and flush it
			// in MaxBatch-sized sweeps (the backlog can approach
			// MaxQueue, and batch sizes — and their histogram — stay
			// bounded by MaxBatch everywhere); anything submitted after
			// done closes gets ErrClosed.
			for {
				select {
				case r := <-s.in:
					batch = append(batch, r)
					continue
				default:
				}
				break
			}
			for len(batch) > 0 {
				c := min(len(batch), s.cfg.MaxBatch)
				s.flush(batch[:c])
				batch = batch[c:]
			}
			return
		}
	}
}

// flush scores one batch through the engine's batched search and
// delivers each result to its waiter. Requests whose context is
// already done are skipped — their waiters have left.
//
// Every flush is traced into the dispatcher-owned Trace (reset here,
// never allocated): assembly and sweep wall times plus whatever tier
// and partition detail the engine's traced sweep records. Each
// delivered request snapshots the batch-level trace into the reusable
// QueryTrace record, overlays its own queue-wait and encode times, and
// feeds the latency stats and the slow-query ring.
//
//oms:hotpath
func (s *Server) flush(batch []*request) {
	flushStart := time.Now()
	live := batch[:0:len(batch)]
	for _, r := range batch {
		if r.ctx.Err() != nil {
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	if cap(s.preps) < len(live) {
		s.preps = make([]core.PreparedQuery, len(live))
	}
	preps := s.preps[:len(live)]
	for i, r := range live {
		preps[i] = r.pq
	}
	tr := &s.trace
	tr.Reset()
	tr.AddNanos(obsv.StageAssemble, int64(time.Since(flushStart)))
	sweepStart := time.Now()
	var psms []fdr.PSM
	var oks []bool
	if s.traced != nil {
		psms, oks = s.traced.SearchPreparedTraced(preps, tr)
	} else {
		psms, oks = s.engine.SearchPrepared(preps)
	}
	tr.AddNanos(obsv.StageSweep, int64(time.Since(sweepStart)))
	s.batchSeq++
	now := time.Now()
	for i, r := range live {
		r.out <- response{psm: psms[i], ok: oks[i]}
		lat := now.Sub(r.enqueued)
		tr.Snapshot(&s.qt)
		s.qt.QueryID = r.pq.QueryID
		s.qt.RequestID = r.reqID
		s.qt.BatchID = s.batchSeq
		s.qt.BatchSize = len(live)
		s.qt.Enqueued = r.enqueued
		s.qt.Total = lat
		s.qt.StageNanos[obsv.StageQueueWait] = int64(flushStart.Sub(r.enqueued))
		s.qt.StageNanos[obsv.StageEncode] = r.encNanos
		if s.stats.observeRequest(lat, oks[i], &s.qt) && s.cfg.OnSlowQuery != nil {
			s.cfg.OnSlowQuery(s.qt)
		}
	}
	s.stats.observeBatch(len(live), tr)
}
