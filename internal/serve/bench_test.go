package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hdc"
	"repro/internal/spectrum"
	"repro/internal/units"
)

// benchEngine hand-assembles an engine at the paper's operating point
// — D=8192 over nRefs mass-ordered references — without paying the
// encoding pipeline for 100k synthetic spectra: reference HVs are
// random (the kernel's cost is data-independent) and masses are laid
// out uniformly so precursor windows select realistic contiguous
// ranges.
func benchEngine(b *testing.B, d, nRefs int) *core.Engine {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	hvs := make([]hdc.BinaryHV, nRefs)
	entries := make([]core.LibraryEntry, nRefs)
	srcPos := make([]int, nRefs)
	const massLo, massHi = 500.0, 1500.0
	for i := range hvs {
		hvs[i] = hdc.RandomBinaryHV(d, rng)
		entries[i] = core.LibraryEntry{
			ID:      "ref",
			Peptide: "PEPTIDE",
			Mass:    massLo + (massHi-massLo)*float64(i)/float64(nRefs),
		}
		srcPos[i] = i
	}
	lib, err := core.RestoreLibrary(entries, hvs, srcPos, 0)
	if err != nil {
		b.Fatal(err)
	}
	p := core.DefaultParams()
	p.Accel.D = d
	// The default open window [-150, +500] Da on the 1000 Da mass span
	// selects contiguous candidate ranges of ~40-65% of the store —
	// the occupancy regime the paper's open search actually runs at.
	engine, _, err := core.NewExactEngineFromLibrary(p, lib)
	if err != nil {
		b.Fatal(err)
	}
	return engine
}

// benchQueries synthesizes query spectra whose precursor masses keep
// their open-search windows largely interior to the library mass span.
func benchQueries(n int) []*spectrum.Spectrum {
	rng := rand.New(rand.NewSource(8))
	out := make([]*spectrum.Spectrum, n)
	for i := range out {
		mass := 700 + 600*rng.Float64()
		s := &spectrum.Spectrum{
			ID:          "q",
			Charge:      2,
			PrecursorMZ: units.NeutralMassToMZ(mass, 2),
		}
		for p := 0; p < 40; p++ {
			s.Peaks = append(s.Peaks, spectrum.Peak{
				MZ:        150 + 1250*rng.Float64(),
				Intensity: 10 + 990*rng.Float64(),
			})
		}
		s.SortPeaks()
		out[i] = s
	}
	return out
}

// BenchmarkServeCoalesced measures the serving layer at 64 concurrent
// clients against the paper's operating point (D=8192, 100k refs,
// ~25% window occupancy). The coalesced variant routes every client
// through the micro-batcher (one block-major sweep per flushed
// batch); the perrequest variant is the same client fleet calling
// Engine.SearchOne directly, re-streaming the packed store per query.
// Acceptance: coalesced ≥ 1.3x the per-request throughput (ns/op is
// per query — lower is better).
func BenchmarkServeCoalesced(b *testing.B) {
	const (
		d       = 8192
		nRefs   = 100_000
		clients = 64
	)
	engine := benchEngine(b, d, nRefs)
	queries := benchQueries(256)

	run := func(b *testing.B, search func(q *spectrum.Spectrum)) {
		work := make(chan *spectrum.Spectrum, clients)
		var wg sync.WaitGroup
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for q := range work {
					search(q)
				}
			}()
		}
		for i := 0; i < b.N; i++ {
			work <- queries[i%len(queries)]
		}
		close(work)
		wg.Wait()
	}

	b.Run("coalesced", func(b *testing.B) {
		srv, err := New(engine, Config{MaxBatch: clients, MaxDelay: 2 * time.Millisecond, MaxQueue: 4 * clients})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		ctx := context.Background()
		b.ResetTimer()
		run(b, func(q *spectrum.Spectrum) {
			if _, _, err := srv.Search(ctx, q); err != nil {
				b.Error(err)
			}
		})
		b.StopTimer()
		st := srv.Stats()
		b.ReportMetric(st.MeanBatchSize, "batchsize/op")
	})
	b.Run("perrequest", func(b *testing.B) {
		b.ResetTimer()
		run(b, func(q *spectrum.Spectrum) {
			if _, _, err := engine.SearchOne(q); err != nil {
				b.Error(err)
			}
		})
	})
}
