// Package libindex persists a built core.Library — the expensive
// product of preprocessing and HD-encoding an entire spectral library
// — as a versioned, checksummed binary index file. Loading an index
// reconstructs a search engine in milliseconds (one pass over packed
// words) instead of re-encoding every spectrum, which is what makes a
// resident search service (cmd/omsd) economical: one library write is
// amortized across arbitrarily many queries.
//
// # File format (version 3, all integers little-endian)
//
//	magic      [6]byte  "OMSIDX"
//	version    uint16   3
//	d          uint32   hypervector dimension
//	shardSize  uint32   search shard size hint (0 = default)
//	n          uint64   entry count
//	skipped    uint64   spectra rejected by preprocessing at build time
//	paramsLen  uint32   length of the params JSON
//	params     []byte   JSON-encoded core.Params the library was built with
//	permLen    uint32   bit-layout permutation length (0 = natural layout, else = d)
//	perm       permLen×u32  dimension permutation (stored position j holds original dim perm[j])
//	masses     n×f64    ascending precursor masses (entry order = mass rank)
//	srcPos     n×u64    mass-rank → build-order permutation (Library.SourcePositions)
//	entries    n×{flags u8, idLen u32, id, pepLen u32, pep}
//	pad        0–7 zero bytes aligning the words section to 8 bytes
//	words      n×W×u64  packed hypervector words, W = hdc.WordsPerHV(d)
//	crc        uint32   CRC-32C (Castagnoli) of every preceding byte
//
// The pad section (new in version 2) puts the bulk word section on an
// 8-byte file offset, so a memory-mapped index (OpenFile) can expose
// the words as an aligned []uint64 view with zero copying.
//
// The perm section (new in version 3) records the entropy-guided
// bit-layout permutation the stored hypervector words were packed
// under. Queries must be permuted identically before scoring, so the
// permutation is part of the index, not a serving-time option; both
// loaders validate it is a true bijection over [0, d) before any
// search engine is built on the words.
//
// The trailing checksum covers the header too, so truncation, bit rot
// and partial writes are all detected; Load additionally validates the
// structural invariants the engine relies on (ascending masses, a true
// permutation, zero tail bits beyond dimension d) so a corrupted file
// can never silently mis-score searches.
package libindex

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/hdc"
)

var magic = [6]byte{'O', 'M', 'S', 'I', 'D', 'X'}

// Version is the current index file format version. Version 3 added
// the bit-layout permutation section; version 2 added the alignment
// pad before the words section. Older files are rejected with a
// version-specific message — rebuild them with omsbuild.
const Version = 3

// Sanity bounds on header fields, so a corrupted length can't drive a
// huge allocation before the payload bytes confirm it. Metadata
// sections are additionally read with chunk-growing slices: the
// allocation tracks bytes actually present in the file, so a tiny
// crafted file with an enormous header count fails on truncation
// after a bounded allocation, and the bulk word section is only sized
// from the header after ~29 bytes per claimed entry have already been
// consumed.
const (
	maxDim        = 1 << 22 // 4M-dimensional hypervectors
	maxEntries    = 1 << 28 // 268M library entries (paper scale: 3M)
	maxTotalWords = 1 << 33 // 64 GiB of packed hypervector words
	maxParamsLen  = 1 << 20 // 1 MiB of params JSON
	maxStringLen  = 1 << 20 // 1 MiB per ID/peptide string
	allocChunk    = 1 << 16 // elements pre-allocated ahead of payload bytes
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Save writes the library and the parameters it was built with as a
// current-version index to w.
func Save(w io.Writer, p core.Params, lib *core.Library) error {
	if lib == nil || lib.Len() == 0 {
		return fmt.Errorf("libindex: refusing to save empty library")
	}
	n := lib.Len()
	if len(lib.HVs) != n {
		return fmt.Errorf("libindex: library has %d entries but %d hypervectors", n, len(lib.HVs))
	}
	d := lib.HVs[0].D
	if p.Accel.D != d {
		return fmt.Errorf("libindex: params dimension D=%d does not match library hypervector dimension D=%d", p.Accel.D, d)
	}
	// Refuse to write a file Load would reject: a hand-assembled
	// library that never ran SortByMass has no permutation and may be
	// out of mass order, and the failure should surface now rather
	// than after the expensive build is gone.
	srcPos := lib.SourcePositions()
	if len(srcPos) != n {
		return fmt.Errorf("libindex: library has %d entries but %d source positions (SortByMass never ran?)", n, len(srcPos))
	}
	for i := 1; i < n; i++ {
		if lib.Entries[i].Mass < lib.Entries[i-1].Mass {
			return fmt.Errorf("libindex: library entries not in ascending mass order at index %d", i)
		}
	}
	paramsJSON, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("libindex: encoding params: %w", err)
	}
	if len(paramsJSON) > maxParamsLen {
		return fmt.Errorf("libindex: params JSON of %d bytes exceeds limit %d", len(paramsJSON), maxParamsLen)
	}
	perm := lib.DimPerm
	if len(perm) != 0 {
		// Refuse to persist a permutation Load would reject.
		if err := hdc.ValidatePermutation(perm, d); err != nil {
			return fmt.Errorf("libindex: library bit-layout permutation: %w", err)
		}
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	crc := crc32.New(castagnoli)
	out := io.MultiWriter(bw, crc)
	enc := sectionWriter{w: out}

	enc.bytes(magic[:])
	enc.u16(Version)
	enc.u32(uint32(d))
	enc.u32(uint32(p.ShardSize))
	enc.u64(uint64(n))
	enc.u64(uint64(lib.Skipped))
	enc.u32(uint32(len(paramsJSON)))
	enc.bytes(paramsJSON)
	enc.u32(uint32(len(perm)))
	for _, dim := range perm {
		enc.u32(uint32(dim))
	}
	for _, e := range lib.Entries {
		enc.f64(e.Mass)
	}
	for _, pos := range srcPos {
		enc.u64(uint64(pos))
	}
	for _, e := range lib.Entries {
		var flags byte
		if e.IsDecoy {
			flags |= 1
		}
		if len(e.ID) > maxStringLen || len(e.Peptide) > maxStringLen {
			return fmt.Errorf("libindex: entry %q: string exceeds %d bytes", e.ID, maxStringLen)
		}
		enc.u8(flags)
		enc.str(e.ID)
		enc.str(e.Peptide)
	}
	// Align the bulk word section to an 8-byte file offset so a
	// memory-mapped index can view it as []uint64 without copying.
	var pad [8]byte
	enc.bytes(pad[:-enc.n&7])
	words := hdc.WordsPerHV(d)
	for i, hv := range lib.HVs {
		if hv.D != d || len(hv.Words) != words {
			return fmt.Errorf("libindex: hypervector %d has D=%d (%d words), want D=%d (%d words)",
				i, hv.D, len(hv.Words), d, words)
		}
		enc.u64s(hv.Words)
	}
	if enc.err != nil {
		return fmt.Errorf("libindex: writing index: %w", enc.err)
	}
	// The checksum trailer goes to the buffered writer only — it must
	// not hash itself.
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := bw.Write(tail[:]); err != nil {
		return fmt.Errorf("libindex: writing index: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("libindex: writing index: %w", err)
	}
	return nil
}

// SaveFile saves the library index to path atomically: the index is
// written to a temporary sibling file and renamed over path only after
// a successful flush, so readers never observe a half-written index.
func SaveFile(path string, p core.Params, lib *core.Library) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(f, p, lib); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// Flush the data blocks before the rename is journaled, or a crash
	// could leave path pointing at an unwritten file — replacing a good
	// index with a corrupt one.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load reads an index from r, verifies its checksum and structural
// invariants, and reconstructs the library and the parameters it was
// built with. The returned library is ready for
// core.NewExactEngineFromLibrary — no spectrum is re-encoded.
func Load(r io.Reader) (core.Params, *core.Library, error) {
	p, lib, _, err := load(r)
	return p, lib, err
}

// load is Load exposing the contiguous packed word block the
// per-entry hypervectors are views over — the copying twin of
// OpenFile, whose Index carries the same block for packed searcher
// construction.
func load(r io.Reader) (core.Params, *core.Library, []uint64, error) {
	crc := crc32.New(castagnoli)
	br := bufio.NewReaderSize(r, 1<<16)
	dec := sectionReader{r: io.TeeReader(br, crc)}

	var hdr [6]byte
	dec.bytes(hdr[:])
	if dec.err != nil {
		return core.Params{}, nil, nil, loadErr(dec.err)
	}
	if hdr != magic {
		return core.Params{}, nil, nil, fmt.Errorf("libindex: not an OMS library index (bad magic %q)", hdr[:])
	}
	version := dec.u16()
	if dec.err == nil && version != Version {
		return core.Params{}, nil, nil, versionErr(version)
	}
	d := int(dec.u32())
	shardSize := int(dec.u32())
	n64 := dec.u64()
	skipped := dec.u64()
	paramsLen := int(dec.u32())
	if dec.err != nil {
		return core.Params{}, nil, nil, loadErr(dec.err)
	}
	if d <= 0 || d > maxDim {
		return core.Params{}, nil, nil, fmt.Errorf("libindex: implausible hypervector dimension %d in header", d)
	}
	if n64 == 0 || n64 > maxEntries {
		return core.Params{}, nil, nil, fmt.Errorf("libindex: implausible entry count %d in header", n64)
	}
	if paramsLen <= 0 || paramsLen > maxParamsLen {
		return core.Params{}, nil, nil, fmt.Errorf("libindex: implausible params length %d in header", paramsLen)
	}
	n := int(n64)
	words := hdc.WordsPerHV(d)
	if int64(n)*int64(words) > maxTotalWords {
		return core.Params{}, nil, nil, fmt.Errorf("libindex: implausible index size: %d entries × %d words", n, words)
	}

	paramsJSON := make([]byte, paramsLen)
	dec.bytes(paramsJSON)
	permLen := int(dec.u32())
	if dec.err == nil && permLen != 0 && permLen != d {
		return core.Params{}, nil, nil, fmt.Errorf("libindex: bit-layout permutation has %d entries, want 0 (natural layout) or %d", permLen, d)
	}
	var perm []int
	if permLen > 0 {
		perm = make([]int, 0, min(permLen, allocChunk))
		for len(perm) < permLen && dec.err == nil {
			perm = append(perm, int(dec.u32()))
		}
	}
	masses := make([]float64, 0, min(n, allocChunk))
	for len(masses) < n && dec.err == nil {
		masses = append(masses, dec.f64())
	}
	srcPos := make([]int, 0, min(n, allocChunk))
	for len(srcPos) < n && dec.err == nil {
		p64 := dec.u64()
		if dec.err == nil && p64 >= n64 {
			return core.Params{}, nil, nil, fmt.Errorf("libindex: source position %d out of range [0,%d)", p64, n)
		}
		srcPos = append(srcPos, int(p64))
	}
	entries := make([]core.LibraryEntry, 0, min(n, allocChunk))
	for len(entries) < n && dec.err == nil {
		flags := dec.u8()
		entries = append(entries, core.LibraryEntry{
			ID:      dec.str(),
			Peptide: dec.str(),
			IsDecoy: flags&1 != 0,
			Mass:    masses[len(entries)],
		})
	}
	if dec.err != nil {
		return core.Params{}, nil, nil, loadErr(dec.err)
	}
	// Skip the alignment pad; its bytes must be zero (they are covered
	// by the checksum, but a crafted file deserves the clearer error).
	var pad [8]byte
	dec.bytes(pad[:-dec.n&7])
	if dec.err == nil && pad != [8]byte{} {
		return core.Params{}, nil, nil, fmt.Errorf("libindex: nonzero alignment padding")
	}
	if dec.err != nil {
		return core.Params{}, nil, nil, loadErr(dec.err)
	}
	// The bulk section: by now the file has backed its claimed entry
	// count with the full metadata sections, so the exact allocation
	// is warranted.
	block := make([]uint64, n*words)
	dec.u64s(block)
	if dec.err != nil {
		return core.Params{}, nil, nil, loadErr(dec.err)
	}

	// Checksum trailer: read from the raw reader so it does not hash
	// itself, then confirm nothing trails it.
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return core.Params{}, nil, nil, loadErr(err)
	}
	if got, want := crc.Sum32(), binary.LittleEndian.Uint32(tail[:]); got != want {
		return core.Params{}, nil, nil, fmt.Errorf("libindex: checksum mismatch (file %08x, computed %08x): index is corrupted", want, got)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return core.Params{}, nil, nil, fmt.Errorf("libindex: trailing data after checksum")
	}

	var p core.Params
	if err := json.Unmarshal(paramsJSON, &p); err != nil {
		return core.Params{}, nil, nil, fmt.Errorf("libindex: decoding params: %w", err)
	}
	if p.Accel.D != d {
		return core.Params{}, nil, nil, fmt.Errorf("libindex: params dimension D=%d disagrees with header dimension %d", p.Accel.D, d)
	}
	p.ShardSize = shardSize // header is authoritative for the shard hint
	for i, m := range masses {
		if math.IsNaN(m) || math.IsInf(m, 0) {
			return core.Params{}, nil, nil, fmt.Errorf("libindex: non-finite precursor mass at entry %d", i)
		}
	}
	// Slice the contiguous word block into per-entry hypervectors and
	// re-check the packed-tail invariant (bits beyond dimension d must
	// be zero, or every Hamming similarity would be silently skewed).
	hvs := make([]hdc.BinaryHV, n)
	tailMask := ^uint64(0)
	if rem := d % 64; rem != 0 {
		tailMask = (1 << uint(rem)) - 1
	}
	for i := range hvs {
		row := block[i*words : (i+1)*words : (i+1)*words]
		if row[words-1]&^tailMask != 0 {
			return core.Params{}, nil, nil, fmt.Errorf("libindex: hypervector %d has bits set beyond dimension %d", i, d)
		}
		hvs[i] = hdc.BinaryHV{D: d, Words: row}
	}
	lib, err := core.RestoreLibrary(entries, hvs, srcPos, int(skipped))
	if err != nil {
		return core.Params{}, nil, nil, err
	}
	if err := lib.SetDimPerm(perm); err != nil {
		return core.Params{}, nil, nil, fmt.Errorf("libindex: %w", err)
	}
	return p, lib, block, nil
}

// versionErr renders a version mismatch with enough history to tell
// the operator what to do about it.
func versionErr(version uint16) error {
	switch {
	case version < Version:
		return fmt.Errorf("libindex: index version %d predates the bit-layout permutation section (this build reads version %d): rebuild the index with omsbuild", version, Version)
	default:
		return fmt.Errorf("libindex: index version %d is newer than this build understands (version %d): upgrade the reader or rebuild the index", version, Version)
	}
}

// LoadFile loads a library index from path.
func LoadFile(path string) (core.Params, *core.Library, error) {
	f, err := os.Open(path)
	if err != nil {
		return core.Params{}, nil, err
	}
	defer f.Close()
	return Load(f)
}

// loadErr normalizes read failures: any EOF inside a section means the
// file ends before the format says it should.
func loadErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("libindex: truncated index: %w", io.ErrUnexpectedEOF)
	}
	return fmt.Errorf("libindex: reading index: %w", err)
}

// sectionWriter writes fixed-width little-endian fields, capturing the
// first error so call sites stay linear and counting bytes written so
// the alignment pad before the words section can be sized.
type sectionWriter struct {
	w   io.Writer
	err error
	n   int64
	buf [8]byte
}

func (s *sectionWriter) bytes(b []byte) {
	if s.err != nil {
		return
	}
	_, s.err = s.w.Write(b)
	if s.err == nil {
		s.n += int64(len(b))
	}
}

func (s *sectionWriter) u8(v byte) {
	s.buf[0] = v
	s.bytes(s.buf[:1])
}

func (s *sectionWriter) u16(v uint16) {
	binary.LittleEndian.PutUint16(s.buf[:2], v)
	s.bytes(s.buf[:2])
}

func (s *sectionWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(s.buf[:4], v)
	s.bytes(s.buf[:4])
}

func (s *sectionWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(s.buf[:8], v)
	s.bytes(s.buf[:8])
}

func (s *sectionWriter) f64(v float64) { s.u64(math.Float64bits(v)) }

func (s *sectionWriter) str(v string) {
	s.u32(uint32(len(v)))
	s.bytes([]byte(v))
}

// u64s writes a word slice in chunks through one scratch buffer,
// avoiding a per-word Write without materializing the whole section.
func (s *sectionWriter) u64s(vs []uint64) {
	if s.err != nil {
		return
	}
	const chunkWords = 8192
	buf := make([]byte, 0, chunkWords*8)
	for len(vs) > 0 {
		c := min(chunkWords, len(vs))
		buf = buf[:c*8]
		for i, v := range vs[:c] {
			binary.LittleEndian.PutUint64(buf[i*8:], v)
		}
		s.bytes(buf)
		if s.err != nil {
			return
		}
		vs = vs[c:]
	}
}

// sectionReader mirrors sectionWriter for reads, counting bytes
// consumed so the alignment pad can be located.
type sectionReader struct {
	r   io.Reader
	err error
	n   int64
	buf [8]byte
}

func (s *sectionReader) bytes(b []byte) {
	if s.err != nil {
		return
	}
	_, s.err = io.ReadFull(s.r, b)
	if s.err == nil {
		s.n += int64(len(b))
	}
}

func (s *sectionReader) u8() byte {
	s.bytes(s.buf[:1])
	return s.buf[0]
}

func (s *sectionReader) u16() uint16 {
	s.bytes(s.buf[:2])
	return binary.LittleEndian.Uint16(s.buf[:2])
}

func (s *sectionReader) u32() uint32 {
	s.bytes(s.buf[:4])
	return binary.LittleEndian.Uint32(s.buf[:4])
}

func (s *sectionReader) u64() uint64 {
	s.bytes(s.buf[:8])
	return binary.LittleEndian.Uint64(s.buf[:8])
}

func (s *sectionReader) f64() float64 { return math.Float64frombits(s.u64()) }

func (s *sectionReader) str() string {
	ln := int(s.u32())
	if s.err != nil {
		return ""
	}
	if ln < 0 || ln > maxStringLen {
		s.err = fmt.Errorf("string length %d exceeds limit %d", ln, maxStringLen)
		return ""
	}
	b := make([]byte, ln)
	s.bytes(b)
	return string(b)
}

// u64s fills a word slice in chunks through one scratch buffer.
func (s *sectionReader) u64s(vs []uint64) {
	if s.err != nil {
		return
	}
	const chunkWords = 8192
	buf := make([]byte, 0, chunkWords*8)
	for len(vs) > 0 {
		c := min(chunkWords, len(vs))
		buf = buf[:c*8]
		s.bytes(buf)
		if s.err != nil {
			return
		}
		for i := range vs[:c] {
			vs[i] = binary.LittleEndian.Uint64(buf[i*8:])
		}
		vs = vs[c:]
	}
}
