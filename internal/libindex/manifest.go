package libindex

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
)

// permsEqual reports whether two bit-layout permutations are the same
// (both empty counts as equal: natural layout).
func permsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ManifestFormat identifies a partition manifest document.
const ManifestFormat = "oms-library-manifest"

// ManifestVersion is the current manifest version. Version 4 turned
// the manifest into an append-able generation log (one CRC'd JSON
// record per line — base, delta, retract, compact; see log.go), so
// incremental library updates publish by appending one fsynced line
// instead of rewriting the document. Version 3 added the shared
// bit-layout permutation (dim_perm); version 2 changed the meaning of
// PartitionInfo.CRC32C from a whole-file checksum to the content
// checksum (image minus the CRC trailer): a CRC over data that ends
// with its own CRC folds to the same residue constant for every
// well-formed file, so the version-1 record could never distinguish
// two internally consistent builds.
const ManifestVersion = 4

// PartitionInfo describes one partition file of a partitioned library
// index. Base-tier partitions tile the mass-sorted library:
// base partition i holds record rows [StartRow, StartRow+Refs) and its
// masses span [MinMass, MaxMass] — the mass fences a query's
// precursor window is routed by. Delta-tier partitions (published by
// omsbuild -append) carry the same fields but their fences may
// overlap the base tiling.
type PartitionInfo struct {
	// File is the partition index file name, relative to the manifest's
	// directory.
	File string `json:"file"`
	// Refs is the number of references in the partition.
	Refs int `json:"refs"`
	// StartRow is the partition's first row within its log record (for
	// the base record that equals the global mass rank of the initial
	// build).
	StartRow int `json:"start_row"`
	// MinMass and MaxMass are the partition's precursor-mass fences
	// (the first and last entry's mass; each partition is internally
	// mass-sorted).
	MinMass float64 `json:"min_mass"`
	MaxMass float64 `json:"max_mass"`
	// Bytes is the partition file's size, cross-checked cheaply on
	// every OpenManifest; CRC32C is the content checksum recorded at
	// build time — the CRC-32C of the file image minus its own 4-byte
	// trailer, i.e. the trailer value — cross-checked by the explicit
	// VerifyPartitions pass. Recording the content CRC (not a whole-file
	// CRC, which is a constant for any file ending in its own CRC) is
	// what lets the manifest distinguish an internally consistent file
	// from a different build generation.
	Bytes  int64  `json:"bytes"`
	CRC32C uint32 `json:"crc32c"`
}

// DecodeParams decodes the engine parameters the base record stored.
func (st *ManifestState) DecodeParams() (core.Params, error) {
	var p core.Params
	if err := json.Unmarshal(st.Params, &p); err != nil {
		return core.Params{}, fmt.Errorf("libindex: decoding manifest params: %w", err)
	}
	return p, nil
}

// PartitionFileName returns the conventional base-build partition
// file name for a manifest path: "<base>.part%03d". Later generations
// name their files with GenPartitionFileName.
func PartitionFileName(manifestPath string, i int) string {
	return fmt.Sprintf("%s.part%03d", manifestPath, i)
}

// SavePartitioned splits a built library into parts mass-contiguous
// partition index files plus a generation-log manifest at
// manifestPath (generation 1, the base record). Partition i is
// written to PartitionFileName(manifestPath, i) as an ordinary
// single-file index over its slice of the mass-sorted library (each
// partition is loadable on its own), and the base record captures the
// global mass fences, row offsets and per-file checksums that let a
// partitioned engine route precursor windows and verify integrity.
// parts is clamped to the library size; parts <= 1 still produces a
// manifest (with one partition) so callers can exercise the
// partitioned path uniformly.
//
// Each partition file stores a rank-compressed local permutation (the
// relative build order of its own rows); the global build-order
// permutation is not recoverable from the partition files. The
// library-wide skipped count is carried by the manifest and, so the
// partition files' sum matches the single-file value, stored in
// partition 0's file.
func SavePartitioned(manifestPath string, p core.Params, lib *core.Library, parts int) error {
	if lib == nil || lib.Len() == 0 {
		return fmt.Errorf("libindex: refusing to save empty library")
	}
	n := lib.Len()
	if parts < 1 {
		return fmt.Errorf("libindex: partition count %d < 1", parts)
	}
	if parts > n {
		parts = n
	}
	paramsJSON, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("libindex: encoding params: %w", err)
	}
	srcPos := lib.SourcePositions()
	if len(srcPos) != n {
		return fmt.Errorf("libindex: library has %d entries but %d source positions (SortByMass never ran?)", n, len(srcPos))
	}

	rec := LogRecord{
		Type:       recordBase,
		Format:     ManifestFormat,
		Version:    ManifestVersion,
		Generation: 1,
		D:          lib.HVs[0].D,
		Skipped:    lib.Skipped,
		Params:     paramsJSON,
		DimPerm:    lib.DimPerm,
	}
	for i := 0; i < parts; i++ {
		lo, hi := i*n/parts, (i+1)*n/parts
		skipped := 0
		if i == 0 {
			skipped = lib.Skipped
		}
		sub, err := core.RestoreLibrary(
			lib.Entries[lo:hi:hi],
			lib.HVs[lo:hi:hi],
			localizePositions(srcPos[lo:hi]),
			skipped,
		)
		if err != nil {
			return fmt.Errorf("libindex: assembling partition %d: %w", i, err)
		}
		// Every partition was packed under the library's shared
		// bit-layout permutation; each file must carry it so a partition
		// opened on its own still permutes queries correctly.
		if err := sub.SetDimPerm(lib.DimPerm); err != nil {
			return fmt.Errorf("libindex: assembling partition %d: %w", i, err)
		}
		path := PartitionFileName(manifestPath, i)
		crc, size, err := savePartitionFile(path, p, sub)
		if err != nil {
			return fmt.Errorf("libindex: writing partition %d: %w", i, err)
		}
		rec.Partitions = append(rec.Partitions, PartitionInfo{
			File:     filepath.Base(path),
			Refs:     hi - lo,
			StartRow: lo,
			MinMass:  lib.Entries[lo].Mass,
			MaxMass:  lib.Entries[hi-1].Mass,
			Bytes:    size,
			CRC32C:   crc,
		})
	}
	line, err := marshalRecord(rec)
	if err != nil {
		return err
	}
	tmp := manifestPath + ".tmp"
	if err := os.WriteFile(tmp, line, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, manifestPath); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(manifestPath))
	return nil
}

// localizePositions rank-compresses a slice of global build positions
// into a local permutation of [0, len): element i becomes the rank of
// global[i] within the slice, preserving relative build order.
func localizePositions(global []int) []int {
	idx := make([]int, len(global))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return global[idx[a]] < global[idx[b]] })
	local := make([]int, len(global))
	for rank, i := range idx {
		local[i] = rank
	}
	return local
}

// savePartitionFile writes one partition index atomically, returning
// the content CRC-32C (the file's own trailer: the checksum of the
// image minus the trailer's 4 bytes) and size — the manifest's
// integrity record.
func savePartitionFile(path string, p core.Params, lib *core.Library) (uint32, int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, err
	}
	if err := Save(f, p, lib); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	var trailer [4]byte
	if _, err := f.ReadAt(trailer[:], st.Size()-4); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	return binary.LittleEndian.Uint32(trailer[:]), st.Size(), nil
}

// PartitionedIndex is an opened partitioned library: the folded
// manifest state, the decoded shared params, and one Index handle per
// live partition in engine order (base tier ascending by mass, then
// the delta tier in publish order). Partitions are opened through
// OpenFile, so on unix each one is a lazy memory mapping — opening a
// library far bigger than RAM is metadata-bound, and only the
// partitions (indeed only the pages) a query load actually touches
// become resident.
type PartitionedIndex struct {
	// State is the folded generation-log state the index was opened at.
	State *ManifestState
	// Params are the shared engine parameters from the base record.
	Params core.Params
	// Parts are the opened partitions, aligned with State.Partitions().
	Parts []*Index

	path string
}

// Path returns the manifest path the index was opened from.
func (pi *PartitionedIndex) Path() string { return pi.path }

// Libraries returns the per-partition libraries in engine order —
// with Blocks, the inputs of core.NewPartitionedExactEngine.
func (pi *PartitionedIndex) Libraries() []*core.Library {
	libs := make([]*core.Library, len(pi.Parts))
	for i, part := range pi.Parts {
		libs[i] = part.Lib
	}
	return libs
}

// Blocks returns the per-partition contiguous packed word blocks in
// engine order (views over the mappings when the partitions are
// mmap-backed).
func (pi *PartitionedIndex) Blocks() [][]uint64 {
	blocks := make([][]uint64, len(pi.Parts))
	for i, part := range pi.Parts {
		blocks[i] = part.Words()
	}
	return blocks
}

// PartitionSet assembles the core engine inputs: every live partition
// with its generation coordinates and packed block view, the
// outstanding tombstones, and the manifest generation — what
// core.NewPartitionedEngine needs to serve the visible set exactly.
func (pi *PartitionedIndex) PartitionSet() core.PartitionSet {
	states := pi.State.Partitions()
	set := core.PartitionSet{
		Specs:      make([]core.PartitionSpec, len(pi.Parts)),
		Generation: pi.State.Generation,
		Skipped:    pi.State.Skipped,
	}
	for i, part := range pi.Parts {
		set.Specs[i] = core.PartitionSpec{
			Lib:    part.Lib,
			Block:  part.Words(), //oms:allow(mmapwrite) zero-copy view; PartitionSet consumers live inside the index's refcounted generation
			Gen:    states[i].Gen,
			GenRow: states[i].GenRow,
			Delta:  states[i].Delta,
		}
	}
	if len(pi.State.Tombstones) > 0 {
		set.Tombstones = make(map[string]uint64, len(pi.State.Tombstones))
		for id, gen := range pi.State.Tombstones {
			set.Tombstones[id] = gen
		}
	}
	return set
}

// Close releases every partition mapping and poisons every partition:
// engines built over the index are invalid afterwards, and Blocks (via
// Index.Words) panics descriptively rather than handing out views into
// unmapped memory. Idempotent — each partition's Close is, so calling
// Close again returns nil.
func (pi *PartitionedIndex) Close() error {
	var first error
	for _, part := range pi.Parts {
		if err := part.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// VerifyPartitions checksums every partition file image against both
// its own CRC trailer (Index.Verify) and the content CRC-32C the
// manifest recorded at build time — the explicit integrity pass
// OpenManifest deliberately skips (it would fault in every page of
// every mapping). The manifest cross-check is computed over the image
// minus the trailer, which is what lets it catch a partition file that
// is internally consistent but from a different build than the
// manifest describes (a whole-file CRC would be the same residue
// constant for every self-consistent file).
func (pi *PartitionedIndex) VerifyPartitions() error {
	dir := filepath.Dir(pi.path)
	states := pi.State.Partitions()
	for i, part := range pi.Parts {
		info := states[i].PartitionInfo
		if err := part.Verify(); err != nil {
			return fmt.Errorf("libindex: partition %d (%s): %w", i, info.File, err)
		}
		var got uint32
		if part.mapped != nil {
			got = crc32.Checksum(part.mapped[:len(part.mapped)-4], castagnoli)
		} else {
			img, err := os.ReadFile(filepath.Join(dir, info.File))
			if err != nil {
				return fmt.Errorf("libindex: partition %d: %w", i, err)
			}
			if len(img) < 4 {
				return fmt.Errorf("libindex: partition %d (%s): truncated (%d bytes)", i, info.File, len(img))
			}
			got = crc32.Checksum(img[:len(img)-4], castagnoli)
		}
		if got != info.CRC32C {
			return fmt.Errorf("libindex: partition %d (%s): file CRC %08x disagrees with manifest CRC %08x (file replaced since the manifest was written?)",
				i, info.File, got, info.CRC32C)
		}
	}
	return nil
}

// OpenManifest opens a partitioned library index: the generation log
// is folded and validated, every live partition file is opened via
// OpenFile (mmap-backed where supported) and cross-checked against
// its record's fences, row counts and sizes, and every outstanding
// tombstone must name an id that some older-generation partition
// actually carries. Like OpenFile, the bulk word payloads are not
// checksummed here — call VerifyPartitions for the full integrity
// pass.
func OpenManifest(path string) (*PartitionedIndex, error) {
	st, err := LoadManifestLog(path)
	if err != nil {
		return nil, err
	}
	p, err := st.DecodeParams()
	if err != nil {
		return nil, err
	}
	if p.Accel.D != st.D {
		return nil, fmt.Errorf("libindex: manifest params dimension D=%d disagrees with manifest dimension %d", p.Accel.D, st.D)
	}
	// Canonical form of the manifest's params for the per-partition
	// build-generation check below.
	manifestParams, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("libindex: re-encoding manifest params: %w", err)
	}
	dir := filepath.Dir(path)
	pi := &PartitionedIndex{State: st, Params: p, path: path}
	for i, ps := range st.Partitions() {
		info := ps.PartitionInfo
		partPath := filepath.Join(dir, info.File)
		if fst, err := os.Stat(partPath); err != nil {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d (generation %d): %w", i, ps.Gen, err)
		} else if fst.Size() != info.Bytes {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d (%s) is %d bytes, manifest records %d", i, info.File, fst.Size(), info.Bytes)
		}
		part, err := OpenFile(partPath)
		if err != nil {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d: %w", i, err)
		}
		pi.Parts = append(pi.Parts, part)
		lib := part.Lib
		if part.Params.Accel.D != st.D {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d has D=%d, manifest says %d", i, part.Params.Accel.D, st.D)
		}
		// The full params — encoder identity above all (seed, precision,
		// chunks, binner, preprocessing) — must agree with the manifest,
		// or a partition file from a different build generation would
		// open cleanly and silently mis-score every query against
		// hypervectors its encoder never produced.
		partParams, err := json.Marshal(part.Params)
		if err != nil {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d: re-encoding params: %w", i, err)
		}
		if string(partParams) != string(manifestParams) {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d (%s) was built with different params than the manifest (mixed build generations?)", i, info.File)
		}
		// Same for the bit-layout permutation: a partition packed under a
		// different permutation than the manifest advertises would be
		// swept with wrongly-permuted queries.
		if !permsEqual(lib.DimPerm, st.DimPerm) {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d (%s) was packed under a different bit-layout permutation than the manifest records (mixed build generations?)", i, info.File)
		}
		if lib.Len() != info.Refs {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d has %d refs, manifest records %d", i, lib.Len(), info.Refs)
		}
		if lo, hi := lib.Entries[0].Mass, lib.Entries[lib.Len()-1].Mass; lo != info.MinMass || hi != info.MaxMass {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d spans masses [%g, %g], manifest fences are [%g, %g]",
				i, lo, hi, info.MinMass, info.MaxMass)
		}
	}
	if err := pi.checkTombstones(); err != nil {
		pi.Close()
		return nil, err
	}
	return pi, nil
}

// checkTombstones verifies every outstanding tombstone retracts an id
// that exists in some strictly older generation — a tombstone for an
// unknown id hides nothing and signals a corrupt or mis-assembled
// log, so it is rejected rather than silently carried.
func (pi *PartitionedIndex) checkTombstones() error {
	tombs := pi.State.Tombstones
	if len(tombs) == 0 {
		return nil
	}
	known := make(map[string]bool, len(tombs))
	states := pi.State.Partitions()
	for i, part := range pi.Parts {
		gen := states[i].Gen
		for _, e := range part.Lib.Entries {
			if tgen, ok := tombs[e.ID]; ok && gen < tgen {
				known[e.ID] = true
			}
		}
	}
	for id, gen := range tombs {
		if !known[id] {
			return fmt.Errorf("libindex: tombstone for unknown id %q (retracted at generation %d, but no older generation carries it)", id, gen)
		}
	}
	return nil
}

// Kind distinguishes the two on-disk index layouts an -index flag can
// point at.
type Kind int

const (
	// KindIndex is a single binary index file ("OMSIDX" magic).
	KindIndex Kind = iota
	// KindManifest is a partitioned-index manifest (generation log).
	KindManifest
)

// DetectKind sniffs whether path is a single index file or a partition
// manifest, so CLIs can accept either behind one flag.
func DetectKind(path string) (Kind, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var head [64]byte
	k, err := f.Read(head[:])
	if err != nil && err != io.EOF {
		return 0, err
	}
	if k >= len(magic) && [6]byte(head[:6]) == magic {
		return KindIndex, nil
	}
	if s := strings.TrimLeft(string(head[:k]), " \t\r\n"); strings.HasPrefix(s, "{") {
		return KindManifest, nil
	}
	return 0, fmt.Errorf("libindex: %s is neither an OMS index nor a partition manifest", path)
}
