package libindex

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/hdc"
)

// permsEqual reports whether two bit-layout permutations are the same
// (both empty counts as equal: natural layout).
func permsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ManifestFormat identifies a partition manifest JSON document.
const ManifestFormat = "oms-library-manifest"

// ManifestVersion is the current manifest document version. Version 3
// added the shared bit-layout permutation (dim_perm) every partition
// was packed under. Version 2 changed the meaning of
// PartitionInfo.CRC32C from a whole-file checksum to the content
// checksum (image minus the CRC trailer): a CRC over data that ends
// with its own CRC folds to the same residue constant for every
// well-formed file, so the version-1 record could never distinguish
// two internally consistent builds.
const ManifestVersion = 3

// PartitionInfo describes one partition file of a partitioned library
// index. Partitions tile the mass-sorted library: partition i holds
// global rows [StartRow, StartRow+Refs) and its masses span
// [MinMass, MaxMass] — the mass fences a query's precursor window is
// routed by.
type PartitionInfo struct {
	// File is the partition index file name, relative to the manifest's
	// directory.
	File string `json:"file"`
	// Refs is the number of references in the partition.
	Refs int `json:"refs"`
	// StartRow is the partition's first global row (= mass rank in the
	// concatenated library).
	StartRow int `json:"start_row"`
	// MinMass and MaxMass are the partition's precursor-mass fences
	// (the first and last entry's mass; partitions are mass-contiguous
	// and non-overlapping up to equal-mass boundary ties).
	MinMass float64 `json:"min_mass"`
	MaxMass float64 `json:"max_mass"`
	// Bytes is the partition file's size, cross-checked cheaply on
	// every OpenManifest; CRC32C is the content checksum recorded at
	// build time — the CRC-32C of the file image minus its own 4-byte
	// trailer, i.e. the trailer value — cross-checked by the explicit
	// VerifyPartitions pass. Recording the content CRC (not a whole-file
	// CRC, which is a constant for any file ending in its own CRC) is
	// what lets the manifest distinguish an internally consistent file
	// from a different build generation.
	Bytes  int64  `json:"bytes"`
	CRC32C uint32 `json:"crc32c"`
}

// Manifest is the partitioned-index manifest document: global library
// identity plus the mass-fenced partition table.
type Manifest struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// D is the hypervector dimension shared by every partition.
	D int `json:"d"`
	// TotalRefs is the reference count of the concatenated library.
	TotalRefs int `json:"total_refs"`
	// Skipped counts spectra rejected by preprocessing at build time.
	Skipped int `json:"skipped"`
	// Params is the JSON-encoded core.Params the library was built
	// with, identical to the params section of every partition file.
	Params json.RawMessage `json:"params"`
	// DimPerm is the bit-layout permutation shared by every partition
	// (empty = natural layout). All partitions of one build are packed
	// under the same permutation — queries are permuted once and swept
	// against every partition — so the manifest records it globally and
	// OpenManifest rejects a partition whose own stored permutation
	// disagrees.
	DimPerm []int `json:"dim_perm,omitempty"`
	// Partitions lists the partition files in ascending mass order.
	Partitions []PartitionInfo `json:"partitions"`
}

// PartitionFileName returns the conventional partition file name for a
// manifest path: "<base>.part%03d".
func PartitionFileName(manifestPath string, i int) string {
	return fmt.Sprintf("%s.part%03d", manifestPath, i)
}

// SavePartitioned splits a built library into parts mass-contiguous
// partition index files plus a manifest at manifestPath. Partition i
// is written to PartitionFileName(manifestPath, i) as an ordinary
// single-file index over its slice of the mass-sorted library (each
// partition is loadable on its own), and the manifest records the
// global mass fences, row offsets and per-file checksums that let a
// partitioned engine route precursor windows and verify integrity.
// parts is clamped to the library size; parts <= 1 still produces a
// manifest (with one partition) so callers can exercise the
// partitioned path uniformly.
//
// Each partition file stores a rank-compressed local permutation (the
// relative build order of its own rows); the global build-order
// permutation is not recoverable from the partition files. The
// library-wide skipped count is carried by the manifest and, so the
// partition files' sum matches the single-file value, stored in
// partition 0's file.
func SavePartitioned(manifestPath string, p core.Params, lib *core.Library, parts int) error {
	if lib == nil || lib.Len() == 0 {
		return fmt.Errorf("libindex: refusing to save empty library")
	}
	n := lib.Len()
	if parts < 1 {
		return fmt.Errorf("libindex: partition count %d < 1", parts)
	}
	if parts > n {
		parts = n
	}
	paramsJSON, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("libindex: encoding params: %w", err)
	}
	srcPos := lib.SourcePositions()
	if len(srcPos) != n {
		return fmt.Errorf("libindex: library has %d entries but %d source positions (SortByMass never ran?)", n, len(srcPos))
	}

	m := Manifest{
		Format:    ManifestFormat,
		Version:   ManifestVersion,
		D:         lib.HVs[0].D,
		TotalRefs: n,
		Skipped:   lib.Skipped,
		Params:    paramsJSON,
		DimPerm:   lib.DimPerm,
	}
	for i := 0; i < parts; i++ {
		lo, hi := i*n/parts, (i+1)*n/parts
		skipped := 0
		if i == 0 {
			skipped = lib.Skipped
		}
		sub, err := core.RestoreLibrary(
			lib.Entries[lo:hi:hi],
			lib.HVs[lo:hi:hi],
			localizePositions(srcPos[lo:hi]),
			skipped,
		)
		if err != nil {
			return fmt.Errorf("libindex: assembling partition %d: %w", i, err)
		}
		// Every partition was packed under the library's shared
		// bit-layout permutation; each file must carry it so a partition
		// opened on its own still permutes queries correctly.
		if err := sub.SetDimPerm(lib.DimPerm); err != nil {
			return fmt.Errorf("libindex: assembling partition %d: %w", i, err)
		}
		path := PartitionFileName(manifestPath, i)
		crc, size, err := savePartitionFile(path, p, sub)
		if err != nil {
			return fmt.Errorf("libindex: writing partition %d: %w", i, err)
		}
		m.Partitions = append(m.Partitions, PartitionInfo{
			File:     filepath.Base(path),
			Refs:     hi - lo,
			StartRow: lo,
			MinMass:  lib.Entries[lo].Mass,
			MaxMass:  lib.Entries[hi-1].Mass,
			Bytes:    size,
			CRC32C:   crc,
		})
	}
	doc, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("libindex: encoding manifest: %w", err)
	}
	doc = append(doc, '\n')
	tmp := manifestPath + ".tmp"
	if err := os.WriteFile(tmp, doc, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, manifestPath); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// localizePositions rank-compresses a slice of global build positions
// into a local permutation of [0, len): element i becomes the rank of
// global[i] within the slice, preserving relative build order.
func localizePositions(global []int) []int {
	idx := make([]int, len(global))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return global[idx[a]] < global[idx[b]] })
	local := make([]int, len(global))
	for rank, i := range idx {
		local[i] = rank
	}
	return local
}

// savePartitionFile writes one partition index atomically, returning
// the content CRC-32C (the file's own trailer: the checksum of the
// image minus the trailer's 4 bytes) and size — the manifest's
// integrity record.
func savePartitionFile(path string, p core.Params, lib *core.Library) (uint32, int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, err
	}
	if err := Save(f, p, lib); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	var trailer [4]byte
	if _, err := f.ReadAt(trailer[:], st.Size()-4); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	return binary.LittleEndian.Uint32(trailer[:]), st.Size(), nil
}

// PartitionedIndex is an opened partitioned library: the manifest, the
// decoded shared params, and one Index handle per partition in mass
// order. Partitions are opened through OpenFile, so on unix each one
// is a lazy memory mapping — opening a library far bigger than RAM is
// metadata-bound, and only the partitions (indeed only the pages) a
// query load actually touches become resident.
type PartitionedIndex struct {
	// Manifest is the manifest document as read from disk.
	Manifest Manifest
	// Params are the shared engine parameters from the manifest.
	Params core.Params
	// Parts are the opened partitions, ascending mass order.
	Parts []*Index

	path string
}

// Path returns the manifest path the index was opened from.
func (pi *PartitionedIndex) Path() string { return pi.path }

// Libraries returns the per-partition libraries in mass order — with
// Blocks, the inputs of core.NewPartitionedExactEngine.
func (pi *PartitionedIndex) Libraries() []*core.Library {
	libs := make([]*core.Library, len(pi.Parts))
	for i, part := range pi.Parts {
		libs[i] = part.Lib
	}
	return libs
}

// Blocks returns the per-partition contiguous packed word blocks in
// mass order (views over the mappings when the partitions are
// mmap-backed).
func (pi *PartitionedIndex) Blocks() [][]uint64 {
	blocks := make([][]uint64, len(pi.Parts))
	for i, part := range pi.Parts {
		blocks[i] = part.Words()
	}
	return blocks
}

// Close releases every partition mapping and poisons every partition:
// engines built over the index are invalid afterwards, and Blocks (via
// Index.Words) panics descriptively rather than handing out views into
// unmapped memory. Idempotent — each partition's Close is, so calling
// Close again returns nil.
func (pi *PartitionedIndex) Close() error {
	var first error
	for _, part := range pi.Parts {
		if err := part.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// VerifyPartitions checksums every partition file image against both
// its own CRC trailer (Index.Verify) and the content CRC-32C the
// manifest recorded at build time — the explicit integrity pass
// OpenManifest deliberately skips (it would fault in every page of
// every mapping). The manifest cross-check is computed over the image
// minus the trailer, which is what lets it catch a partition file that
// is internally consistent but from a different build than the
// manifest describes (a whole-file CRC would be the same residue
// constant for every self-consistent file).
func (pi *PartitionedIndex) VerifyPartitions() error {
	dir := filepath.Dir(pi.path)
	for i, part := range pi.Parts {
		info := pi.Manifest.Partitions[i]
		if err := part.Verify(); err != nil {
			return fmt.Errorf("libindex: partition %d (%s): %w", i, info.File, err)
		}
		var got uint32
		if part.mapped != nil {
			got = crc32.Checksum(part.mapped[:len(part.mapped)-4], castagnoli)
		} else {
			img, err := os.ReadFile(filepath.Join(dir, info.File))
			if err != nil {
				return fmt.Errorf("libindex: partition %d: %w", i, err)
			}
			if len(img) < 4 {
				return fmt.Errorf("libindex: partition %d (%s): truncated (%d bytes)", i, info.File, len(img))
			}
			got = crc32.Checksum(img[:len(img)-4], castagnoli)
		}
		if got != info.CRC32C {
			return fmt.Errorf("libindex: partition %d (%s): file CRC %08x disagrees with manifest CRC %08x (file replaced since the manifest was written?)",
				i, info.File, got, info.CRC32C)
		}
	}
	return nil
}

// LoadManifest reads and structurally validates a manifest document
// without opening any partition file.
func LoadManifest(path string) (Manifest, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(doc, &m); err != nil {
		return Manifest{}, fmt.Errorf("libindex: decoding manifest %s: %w", path, err)
	}
	if m.Format != ManifestFormat {
		return Manifest{}, fmt.Errorf("libindex: %s is not a library manifest (format %q)", path, m.Format)
	}
	if m.Version != ManifestVersion {
		if m.Version < ManifestVersion {
			return Manifest{}, fmt.Errorf("libindex: manifest version %d predates the shared bit-layout permutation (this build reads version %d): rebuild the partitioned index with omsbuild", m.Version, ManifestVersion)
		}
		return Manifest{}, fmt.Errorf("libindex: manifest version %d is newer than this build understands (version %d): upgrade the reader or rebuild the index", m.Version, ManifestVersion)
	}
	if len(m.Partitions) == 0 {
		return Manifest{}, fmt.Errorf("libindex: manifest %s lists no partitions", path)
	}
	if len(m.DimPerm) != 0 {
		if err := hdc.ValidatePermutation(m.DimPerm, m.D); err != nil {
			return Manifest{}, fmt.Errorf("libindex: manifest bit-layout permutation: %w", err)
		}
	}
	total := 0
	for i, part := range m.Partitions {
		if part.File == "" || part.File != filepath.Base(part.File) {
			return Manifest{}, fmt.Errorf("libindex: partition %d file %q is not a bare file name", i, part.File)
		}
		if part.Refs <= 0 {
			return Manifest{}, fmt.Errorf("libindex: partition %d has %d refs", i, part.Refs)
		}
		if part.StartRow != total {
			return Manifest{}, fmt.Errorf("libindex: partition %d starts at row %d, want %d (partitions must tile the library)", i, part.StartRow, total)
		}
		if part.MinMass > part.MaxMass {
			return Manifest{}, fmt.Errorf("libindex: partition %d has inverted mass fences [%g, %g]", i, part.MinMass, part.MaxMass)
		}
		if i > 0 && part.MinMass < m.Partitions[i-1].MaxMass {
			return Manifest{}, fmt.Errorf("libindex: partition %d fence %g below partition %d fence %g (mass order broken)",
				i, part.MinMass, i-1, m.Partitions[i-1].MaxMass)
		}
		total += part.Refs
	}
	if total != m.TotalRefs {
		return Manifest{}, fmt.Errorf("libindex: manifest claims %d total refs but partitions sum to %d", m.TotalRefs, total)
	}
	return m, nil
}

// OpenManifest opens a partitioned library index: the manifest is
// validated, every partition file is opened via OpenFile (mmap-backed
// where supported) and cross-checked against the manifest's fences,
// row offsets and sizes. Like OpenFile, the bulk word payloads are not
// checksummed here — call VerifyPartitions for the full integrity
// pass.
func OpenManifest(path string) (*PartitionedIndex, error) {
	m, err := LoadManifest(path)
	if err != nil {
		return nil, err
	}
	var p core.Params
	if err := json.Unmarshal(m.Params, &p); err != nil {
		return nil, fmt.Errorf("libindex: decoding manifest params: %w", err)
	}
	if p.Accel.D != m.D {
		return nil, fmt.Errorf("libindex: manifest params dimension D=%d disagrees with manifest dimension %d", p.Accel.D, m.D)
	}
	// Canonical form of the manifest's params for the per-partition
	// build-generation check below.
	manifestParams, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("libindex: re-encoding manifest params: %w", err)
	}
	dir := filepath.Dir(path)
	pi := &PartitionedIndex{Manifest: m, Params: p, path: path}
	for i, info := range m.Partitions {
		partPath := filepath.Join(dir, info.File)
		if st, err := os.Stat(partPath); err != nil {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d: %w", i, err)
		} else if st.Size() != info.Bytes {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d (%s) is %d bytes, manifest records %d", i, info.File, st.Size(), info.Bytes)
		}
		part, err := OpenFile(partPath)
		if err != nil {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d: %w", i, err)
		}
		pi.Parts = append(pi.Parts, part)
		lib := part.Lib
		if part.Params.Accel.D != m.D {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d has D=%d, manifest says %d", i, part.Params.Accel.D, m.D)
		}
		// The full params — encoder identity above all (seed, precision,
		// chunks, binner, preprocessing) — must agree with the manifest,
		// or a partition file from a different build generation would
		// open cleanly and silently mis-score every query against
		// hypervectors its encoder never produced.
		partParams, err := json.Marshal(part.Params)
		if err != nil {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d: re-encoding params: %w", i, err)
		}
		if string(partParams) != string(manifestParams) {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d (%s) was built with different params than the manifest (mixed build generations?)", i, info.File)
		}
		// Same for the bit-layout permutation: a partition packed under a
		// different permutation than the manifest advertises would be
		// swept with wrongly-permuted queries.
		if !permsEqual(lib.DimPerm, m.DimPerm) {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d (%s) was packed under a different bit-layout permutation than the manifest records (mixed build generations?)", i, info.File)
		}
		if lib.Len() != info.Refs {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d has %d refs, manifest records %d", i, lib.Len(), info.Refs)
		}
		if lo, hi := lib.Entries[0].Mass, lib.Entries[lib.Len()-1].Mass; lo != info.MinMass || hi != info.MaxMass {
			pi.Close()
			return nil, fmt.Errorf("libindex: partition %d spans masses [%g, %g], manifest fences are [%g, %g]",
				i, lo, hi, info.MinMass, info.MaxMass)
		}
	}
	return pi, nil
}

// Kind distinguishes the two on-disk index layouts an -index flag can
// point at.
type Kind int

const (
	// KindIndex is a single binary index file ("OMSIDX" magic).
	KindIndex Kind = iota
	// KindManifest is a partitioned-index JSON manifest.
	KindManifest
)

// DetectKind sniffs whether path is a single index file or a partition
// manifest, so CLIs can accept either behind one flag.
func DetectKind(path string) (Kind, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var head [64]byte
	k, err := f.Read(head[:])
	if err != nil && err != io.EOF {
		return 0, err
	}
	if k >= len(magic) && [6]byte(head[:6]) == magic {
		return KindIndex, nil
	}
	if s := strings.TrimLeft(string(head[:k]), " \t\r\n"); strings.HasPrefix(s, "{") {
		return KindManifest, nil
	}
	return 0, fmt.Errorf("libindex: %s is neither an OMS index nor a partition manifest", path)
}
