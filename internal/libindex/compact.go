package libindex

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"repro/internal/core"
	"repro/internal/hdc"
)

// CompactStats summarizes one compaction.
type CompactStats struct {
	// Generation is the published compact generation (0 when Noop).
	Generation uint64
	// Noop reports that nothing needed compacting (no deltas, no
	// tombstones, no hidden rows) and no record was written.
	Noop bool
	// DroppedPartitions and NewPartitions count the retired and
	// replacement partition files; MergedRefs the visible rows carried
	// into the replacements and RemovedRefs the shadowed rows
	// physically dropped.
	DroppedPartitions, NewPartitions int
	MergedRefs, RemovedRefs          int
	// ClearedTombstones counts the tombstones the compaction consumed.
	ClearedTombstones int
}

// Compact folds the delta tier into the base tier and publishes the
// result as one compact generation: every delta partition, every
// partition holding shadowed rows, and — transitively — every base
// partition whose mass fences touch an affected partition's is merged;
// the visible survivors are re-tiled into mass-contiguous base
// partitions of at most maxPartRefs rows (0 = one partition per gap)
// and the old files are logically dropped (physical removal is
// deferred: live readers may still map them — see SweepRetired). All
// outstanding tombstones are consumed.
//
// Two planner rules keep the dedup merge bit-identical to a
// from-scratch build afterwards: the affected set is closed under
// inclusive fence intersection, and no output partition boundary
// splits an equal-mass run. Together they guarantee that two rows of
// equal mass never end up in live partitions of different generations,
// so the merge comparator's (generation, generation-row) tie-break
// always equals append order (see DESIGN.md §11).
//
// Like every writer, Compact assumes it is the only writer; it is safe
// against concurrent readers, which keep serving the previous
// generation until they reload.
func Compact(manifestPath string, maxPartRefs int) (CompactStats, error) {
	pi, err := OpenManifest(manifestPath)
	if err != nil {
		return CompactStats{}, err
	}
	defer pi.Close()

	st := pi.State
	set := pi.PartitionSet()
	hidden := core.HiddenRows(set.Specs, set.Tombstones)
	hiddenTotal := 0
	for _, h := range hidden {
		hiddenTotal += len(h)
	}
	if len(st.Deltas) == 0 && hiddenTotal == 0 && len(st.Tombstones) == 0 {
		return CompactStats{Noop: true}, nil
	}

	// Affected set: deltas and anything with shadowed rows, closed
	// under inclusive fence intersection (a kept partition must be
	// strictly mass-disjoint from everything being merged).
	states := st.Partitions()
	affected := make([]bool, len(states))
	for i := range states {
		affected[i] = states[i].Delta || len(hidden[i]) > 0
	}
	for changed := true; changed; {
		changed = false
		for i := range states {
			if affected[i] {
				continue
			}
			for j := range states {
				if affected[j] &&
					states[i].MinMass <= states[j].MaxMass &&
					states[j].MinMass <= states[i].MaxMass {
					affected[i] = true
					changed = true
					break
				}
			}
		}
	}

	// Merge the affected partitions' visible rows in canonical order:
	// ascending mass, ties by append order (generation, then the row's
	// offset within its generation).
	type mrow struct {
		entry core.LibraryEntry
		hv    hdc.BinaryHV
		gen   uint64
		seq   int
	}
	var rows []mrow
	stats := CompactStats{ClearedTombstones: len(st.Tombstones)}
	var drop []string
	for i := range states {
		if !affected[i] {
			continue
		}
		drop = append(drop, states[i].File)
		stats.DroppedPartitions++
		lib := pi.Parts[i].Lib
		for r := range lib.Entries {
			if _, shadowed := hidden[i][r]; shadowed {
				stats.RemovedRefs++
				continue
			}
			rows = append(rows, mrow{lib.Entries[r], lib.HVs[r], states[i].Gen, states[i].GenRow + r})
		}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		if rows[a].entry.Mass != rows[b].entry.Mass {
			return rows[a].entry.Mass < rows[b].entry.Mass
		}
		if rows[a].gen != rows[b].gen {
			return rows[a].gen < rows[b].gen
		}
		return rows[a].seq < rows[b].seq
	})
	stats.MergedRefs = len(rows)

	var kept []PartitionState
	for i := range states {
		if !affected[i] {
			kept = append(kept, states[i])
		}
	}
	if len(rows) == 0 && len(kept) == 0 {
		return CompactStats{}, fmt.Errorf("libindex: compaction would leave no live partitions (every reference is retracted); refusing — rebuild instead")
	}

	// Partition the merged rows into the gaps between kept partitions:
	// closure guarantees every merged mass lies strictly outside every
	// kept fence interval, so each row maps to exactly one gap and the
	// new partitions cannot straddle a kept one.
	groups := make(map[int][]mrow)
	var gapOrder []int
	for _, r := range rows {
		g := sort.Search(len(kept), func(k int) bool { return kept[k].MaxMass >= r.entry.Mass })
		if g < len(kept) && kept[g].MinMass <= r.entry.Mass {
			return CompactStats{}, fmt.Errorf("libindex: internal: merged row mass %g falls inside kept partition %s [%g, %g]",
				r.entry.Mass, kept[g].File, kept[g].MinMass, kept[g].MaxMass)
		}
		if _, ok := groups[g]; !ok {
			gapOrder = append(gapOrder, g)
		}
		groups[g] = append(groups[g], r)
	}
	sort.Ints(gapOrder)

	newGen := st.Generation + 1
	rec := LogRecord{Type: recordCompact, Generation: newGen, Drop: drop}
	for id := range st.Tombstones {
		rec.Clear = append(rec.Clear, id)
	}
	sort.Strings(rec.Clear)

	startRow, fileIdx := 0, 0
	for _, g := range gapOrder {
		group := groups[g]
		for lo := 0; lo < len(group); {
			hi := len(group)
			if maxPartRefs > 0 && lo+maxPartRefs < hi {
				hi = lo + maxPartRefs
				// Never split an equal-mass run across output partitions —
				// the exactness invariant above.
				for hi < len(group) && group[hi].entry.Mass == group[hi-1].entry.Mass {
					hi++
				}
			}
			chunk := group[lo:hi]
			entries := make([]core.LibraryEntry, len(chunk))
			hvs := make([]hdc.BinaryHV, len(chunk))
			ord := make([]int, len(chunk))
			for i, r := range chunk {
				entries[i] = r.entry
				hvs[i] = r.hv
				ord[i] = i
			}
			// srcPos: each row's rank in append order — what a from-scratch
			// build's stable mass sort would have recorded.
			sort.SliceStable(ord, func(a, b int) bool {
				if chunk[ord[a]].gen != chunk[ord[b]].gen {
					return chunk[ord[a]].gen < chunk[ord[b]].gen
				}
				return chunk[ord[a]].seq < chunk[ord[b]].seq
			})
			srcPos := make([]int, len(chunk))
			for rank, i := range ord {
				srcPos[i] = rank
			}
			sub, err := core.RestoreLibrary(entries, hvs, srcPos, 0)
			if err != nil {
				return CompactStats{}, fmt.Errorf("libindex: assembling compacted partition %d: %w", fileIdx, err)
			}
			if err := sub.SetDimPerm(st.DimPerm); err != nil {
				return CompactStats{}, fmt.Errorf("libindex: assembling compacted partition %d: %w", fileIdx, err)
			}
			path := GenPartitionFileName(manifestPath, newGen, fileIdx)
			crc, size, err := savePartitionFile(path, pi.Params, sub)
			if err != nil {
				return CompactStats{}, fmt.Errorf("libindex: writing compacted partition %d: %w", fileIdx, err)
			}
			rec.Partitions = append(rec.Partitions, PartitionInfo{
				File:     filepath.Base(path),
				Refs:     len(chunk),
				StartRow: startRow,
				MinMass:  chunk[0].entry.Mass,
				MaxMass:  chunk[len(chunk)-1].entry.Mass,
				Bytes:    size,
				CRC32C:   crc,
			})
			startRow += len(chunk)
			fileIdx++
			lo = hi
		}
	}
	stats.NewPartitions = fileIdx

	if err := appendLogRecord(manifestPath, st, rec); err != nil {
		return CompactStats{}, err
	}
	if err := st.apply(rec, false); err != nil {
		return CompactStats{}, fmt.Errorf("libindex: folding just-published compact record: %w", err)
	}
	stats.Generation = newGen
	return stats, nil
}

// partitionFileRE matches the partition files belonging to a manifest
// base name — base-build names ("<base>.partNNN"), generation names
// ("<base>.gNNNNNN.partNNN") and their atomic-write temporaries.
func partitionFileRE(manifestBase string) *regexp.Regexp {
	return regexp.MustCompile(`^` + regexp.QuoteMeta(manifestBase) + `(\.g\d{6})?\.part\d{3}(\.tmp)?$`)
}

// SweepOrphans removes partition files in the manifest's directory
// that NO log record — live or dropped — has ever referenced, plus
// stale atomic-write temporaries: the leftovers of a writer that
// crashed between writing its partition files and appending its
// record. Removing them is always safe for readers (nothing can map a
// never-published file), but assumes no writer is mid-publish. The
// removed file names are returned.
func SweepOrphans(manifestPath string, st *ManifestState) ([]string, error) {
	return sweep(manifestPath, func(name string, tmp bool) bool {
		return tmp || !st.everFiles[name]
	})
}

// SweepRetired removes partition files that earlier generations
// referenced but the current generation no longer does — the files a
// compaction logically dropped. Unlike SweepOrphans this is NOT safe
// while readers of older generations are live (their mappings keep
// the data readable on unix, but the names disappear); run it only
// when every reader has reloaded past the drop, e.g. from omscompact
// -gc during maintenance.
func SweepRetired(manifestPath string, st *ManifestState) ([]string, error) {
	live := make(map[string]bool, len(st.Base)+len(st.Deltas))
	for _, p := range st.Partitions() {
		live[p.File] = true
	}
	return sweep(manifestPath, func(name string, tmp bool) bool {
		return !tmp && st.everFiles[name] && !live[name]
	})
}

// sweep removes the manifest's partition-named directory entries
// selected by rm(name, isTmp) and returns their names.
func sweep(manifestPath string, rm func(name string, tmp bool) bool) ([]string, error) {
	dir := filepath.Dir(manifestPath)
	re := partitionFileRE(filepath.Base(manifestPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !re.MatchString(name) {
			continue
		}
		if !rm(name, filepath.Ext(name) == ".tmp") {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return removed, err
		}
		removed = append(removed, name)
	}
	if len(removed) > 0 {
		syncDir(dir)
	}
	return removed, nil
}
