//go:build !unix

package libindex

import (
	"fmt"
	"os"
)

// mmapSupported reports whether this platform can memory-map an index
// file; when false OpenFile silently falls back to the copying loader.
const mmapSupported = false

// mmapFile is unavailable on this platform; OpenFile falls back to the
// copying loader before ever calling it.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("libindex: memory mapping not supported on this platform")
}

// munmapFile matches mmap_unix.go; it is never reached when
// mmapSupported is false.
func munmapFile(data []byte) error {
	return nil
}
