package libindex

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzIndexLoad drives crafted index images through both loaders: the
// streaming checksummed Load and the in-memory parser behind the
// mmap-backed OpenFile. Neither may panic, and neither may size an
// allocation from an unvalidated header field — Load grows its
// metadata sections chunk by chunk against the bytes actually present,
// and parseIndex checks the claimed entry count against the image size
// before allocating anything. Structure-aware seeds start from a valid
// save so the fuzzer explores deep states, not just magic-number
// rejections. When both loaders accept an image they must agree on
// what it contains.
func FuzzIndexLoad(f *testing.F) {
	valid := validIndexImage(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	// Header-field mutants: entry counts are the dangerous fields (they
	// size allocations); offsets per the format doc: magic 6, version
	// 2, d 4, shardSize 4, n 8, skipped 8, paramsLen 4. The seed list
	// is kept short — each corpus entry costs noticeable coordinator
	// warmup on small CI boxes before mutation throughput kicks in.
	for _, mut := range []struct {
		off int
		val uint64
		n   int
	}{
		{16, 1 << 60, 8}, // absurd entry count
		{16, 1 << 27, 8}, // large-but-bounded entry count
		{8, 63, 4},       // dimension not a multiple of 64
	} {
		img := append([]byte(nil), valid...)
		switch mut.n {
		case 2:
			binary.LittleEndian.PutUint16(img[mut.off:], uint16(mut.val))
		case 4:
			binary.LittleEndian.PutUint32(img[mut.off:], uint32(mut.val))
		case 8:
			binary.LittleEndian.PutUint64(img[mut.off:], mut.val)
		}
		f.Add(img)
	}
	// Version-3 permutation-section seeds: a valid permuted image, the
	// same image with a duplicated perm entry (a checksummed
	// non-bijection both loaders must reject descriptively), and a
	// natural image claiming a nonzero perm length it does not carry.
	permuted := permutedIndexImage(f)
	f.Add(permuted)
	dup := append([]byte(nil), permuted...)
	off := permSectionOffset(dup)
	copy(dup[off+8:off+12], dup[off+4:off+8])
	fixCRC(dup)
	f.Add(dup)
	badLen := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badLen[permSectionOffset(badLen):], 7)
	f.Add(badLen)
	f.Fuzz(func(t *testing.T, data []byte) {
		lp, llib, lerr := Load(bytes.NewReader(data))
		pp, plib, _, perr := parseIndex(data)
		if lerr != nil {
			return
		}
		// Load's full checksum pass accepts strictly fewer images than
		// the structural parser; anything Load takes, parseIndex must
		// take and agree on.
		if perr != nil {
			t.Fatalf("Load accepted an image parseIndex rejects: %v", perr)
		}
		if lp.Accel.D != pp.Accel.D || llib.Len() != plib.Len() || llib.Skipped != plib.Skipped {
			t.Fatalf("loaders disagree: load D=%d n=%d, parse D=%d n=%d",
				lp.Accel.D, llib.Len(), pp.Accel.D, plib.Len())
		}
		if !permsEqual(llib.DimPerm, plib.DimPerm) {
			t.Fatalf("loaders disagree on bit-layout permutation: %d vs %d entries",
				len(llib.DimPerm), len(plib.DimPerm))
		}
		for i := 0; i < llib.Len(); i++ {
			if llib.Entries[i] != plib.Entries[i] || !llib.HVs[i].Equal(plib.HVs[i]) {
				t.Fatalf("loaders disagree on entry %d", i)
			}
		}
	})
}

// validIndexImage builds a small valid index image for seeding — a
// synthetic library (random hypervectors, ascending masses), not a
// full encoding pipeline, so every fuzz worker starts instantly.
func validIndexImage(f *testing.F) []byte {
	f.Helper()
	p, lib := syntheticLibrary(f, 6, 128)
	var buf bytes.Buffer
	if err := Save(&buf, p, lib); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// permutedIndexImage is validIndexImage under a non-identity bit
// layout (dimension reversal — any bijection exercises the perm
// section equally).
func permutedIndexImage(f *testing.F) []byte {
	f.Helper()
	p, lib := syntheticLibrary(f, 6, 128)
	d := lib.HVs[0].D
	perm := make([]int, d)
	for i := range perm {
		perm[i] = d - 1 - i
	}
	if err := lib.SetDimPerm(perm); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, p, lib); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}
