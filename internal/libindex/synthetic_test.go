package libindex

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hdc"
)

// syntheticLibrary assembles a valid mass-sorted library of n random
// hypervectors directly — no preprocessing or encoding — for tests and
// benchmarks whose subject is the index machinery, not the encoder.
func syntheticLibrary(tb testing.TB, n, d int) (core.Params, *core.Library) {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	entries := make([]core.LibraryEntry, n)
	hvs := make([]hdc.BinaryHV, n)
	for i := range entries {
		entries[i] = core.LibraryEntry{
			ID:      fmt.Sprintf("ref-%d", i),
			Peptide: fmt.Sprintf("PEPTIDE%d", i),
			IsDecoy: i%3 == 0,
			Mass:    500 + float64(i)*0.37,
		}
		hvs[i] = hdc.RandomBinaryHV(d, rng)
	}
	lib, err := core.RestoreLibrary(entries, hvs, rng.Perm(n), 0)
	if err != nil {
		tb.Fatal(err)
	}
	return testParams(d, 0, 3), lib
}
