//go:build unix

package libindex

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported reports whether this platform can memory-map an index
// file; when false OpenFile silently falls back to the copying loader.
const mmapSupported = true

// mmapFile maps size bytes of f read-only. The mapping is shared, so
// the pages are backed by the page cache: cold partitions cost no heap
// and fault in lazily, and a re-opened index whose pages are still
// resident costs no I/O at all.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, fmt.Errorf("libindex: cannot map %d-byte file", size)
	}
	if int64(int(size)) != size {
		return nil, fmt.Errorf("libindex: file of %d bytes exceeds the address space", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
