package libindex

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mustPanicClosed asserts that fn panics with the use-after-close
// message.
func mustPanicClosed(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s after Close did not panic", what)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "no view outlives its generation's Close") {
			t.Fatalf("%s after Close panicked with %v, want the lifetime message", what, r)
		}
	}()
	fn()
}

// TestClosePoisonsIndex pins the use-after-close contract: Close zeroes
// the words view and flips the index closed, Words panics descriptively
// afterwards, and a second Close is a nil no-op.
func TestClosePoisonsIndex(t *testing.T) {
	ds := testWorkload(t)
	p := testParams(512, 0, 3)
	built := buildEngine(t, p, ds.Library)
	path := filepath.Join(t.TempDir(), "lib.omsidx")
	if err := SaveFile(path, p, built.Library()); err != nil {
		t.Fatal(err)
	}

	ix, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Words()) == 0 {
		t.Fatal("open index has an empty words view")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if ix.words != nil {
		t.Fatal("Close left the words view populated")
	}
	if ix.Mapped() {
		t.Fatal("index still reports mapped after Close")
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("second Close: %v, want nil (idempotent)", err)
	}
	mustPanicClosed(t, "Words", func() { ix.Words() })
}

// TestClosePoisonsCopiedIndex pins that the poison does not depend on
// which loader ran: a heap-copied index (no mapping to release) closes
// to the same panicking state as a mapped one.
func TestClosePoisonsCopiedIndex(t *testing.T) {
	ds := testWorkload(t)
	p := testParams(512, 0, 3)
	built := buildEngine(t, p, ds.Library)
	path := filepath.Join(t.TempDir(), "lib.omsidx")
	if err := SaveFile(path, p, built.Library()); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := openCopied(f, path)
	if cerr := f.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if ix.Mapped() {
		t.Fatal("copying loader produced a mapped index")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("second Close: %v, want nil (idempotent)", err)
	}
	mustPanicClosed(t, "Words", func() { ix.Words() })
}

// TestClosePoisonsPartitionedIndex pins that closing a manifest closes
// and poisons every partition — Blocks panics via the partition's Words
// — and stays idempotent.
func TestClosePoisonsPartitionedIndex(t *testing.T) {
	ds := testWorkload(t)
	p := testParams(512, 100, 3)
	built := buildEngine(t, p, ds.Library)
	dir := t.TempDir()
	manifest := filepath.Join(dir, "lib.manifest")
	if err := SavePartitioned(manifest, p, built.Library(), 3); err != nil {
		t.Fatal(err)
	}
	pi, err := OpenManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pi.Blocks()); got != 3 {
		t.Fatalf("%d blocks before Close, want 3", got)
	}
	if err := pi.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pi.Close(); err != nil {
		t.Fatalf("second Close: %v, want nil (idempotent)", err)
	}
	mustPanicClosed(t, "Blocks", func() { pi.Blocks() })
	for i, part := range pi.Parts {
		if !part.closed {
			t.Fatalf("partition %d not poisoned by manifest Close", i)
		}
	}
}
