package libindex

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// resealRecordLine re-seals a tampered manifest log line (recomputes
// its CRC) so the per-record checksum passes and the deeper
// cross-checks are the ones exercised.
func resealRecordLine(t *testing.T, line string) []byte {
	t.Helper()
	var rec LogRecord
	if err := json.Unmarshal([]byte(strings.TrimSuffix(line, "\n")), &rec); err != nil {
		t.Fatalf("resealing tampered record: %v", err)
	}
	out, err := marshalRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestOpenFileMatchesLoad pins that the mmap-backed open path yields a
// library, params and packed block bit-identical to the copying
// loader, and that an engine over the packed block searches
// identically to one over the loaded library.
func TestOpenFileMatchesLoad(t *testing.T) {
	ds := testWorkload(t)
	cases := []struct{ d, shard, prefilter int }{
		{512, 0, 0},
		{1024, 64, 4},
		{1000, 96, 3}, // non-multiple-of-64 dimension exercises the tail mask
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("D%d/shard%d/pf%d", tc.d, tc.shard, tc.prefilter), func(t *testing.T) {
			p := testParams(tc.d, tc.shard, 3)
			p.PrefilterWords = tc.prefilter
			built := buildEngine(t, p, ds.Library)
			path := filepath.Join(t.TempDir(), "lib.omsidx")
			if err := SaveFile(path, p, built.Library()); err != nil {
				t.Fatal(err)
			}

			lp, lib, err := LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			ix, err := OpenFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer ix.Close()
			if !ix.Mapped() {
				t.Fatal("OpenFile did not map the index on a unix platform")
			}
			if ix.Params.Accel != lp.Accel || ix.Params.ShardSize != lp.ShardSize ||
				ix.Params.PrefilterWords != lp.PrefilterWords {
				t.Fatalf("params mismatch: open %+v load %+v", ix.Params.Accel, lp.Accel)
			}
			if ix.Lib.Len() != lib.Len() || ix.Lib.Skipped != lib.Skipped {
				t.Fatalf("library size mismatch: open %d/%d load %d/%d",
					ix.Lib.Len(), ix.Lib.Skipped, lib.Len(), lib.Skipped)
			}
			for i := 0; i < lib.Len(); i++ {
				if ix.Lib.Entries[i] != lib.Entries[i] {
					t.Fatalf("entry %d mismatch", i)
				}
				if !ix.Lib.HVs[i].Equal(lib.HVs[i]) {
					t.Fatalf("hypervector %d differs between open and load", i)
				}
				if ix.Lib.SourcePos(i) != lib.SourcePos(i) {
					t.Fatalf("source position %d mismatch", i)
				}
			}
			if err := ix.Verify(); err != nil {
				t.Fatalf("Verify on a pristine mapping: %v", err)
			}

			// Engine over the zero-copy block == engine over the loaded
			// library, PSM for PSM.
			packedEngine, _, err := core.NewExactEngineFromPacked(ix.Params, ix.Lib, ix.Words())
			if err != nil {
				t.Fatal(err)
			}
			loadedEngine, _, err := core.NewExactEngineFromLibrary(lp, lib)
			if err != nil {
				t.Fatal(err)
			}
			want, err := loadedEngine.SearchAll(ds.Queries)
			if err != nil {
				t.Fatal(err)
			}
			got, err := packedEngine.SearchAll(ds.Queries)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("PSM count mismatch: packed %d, loaded %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("PSM %d mismatch:\npacked %+v\nloaded %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestOpenFileRejectsCorruption runs the Load corruption matrix
// through the mmap parser — same crafted images, same refusals —
// except the flipped-body-bit case, which only the full checksum pass
// can see (OpenFile defers it to Verify by design).
func TestOpenFileRejectsCorruption(t *testing.T) {
	ds := testWorkload(t)
	p := testParams(512, 0, 3)
	built := buildEngine(t, p, ds.Library)
	var buf bytes.Buffer
	if err := Save(&buf, p, built.Library()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	dir := t.TempDir()

	open := func(img []byte) error {
		path := filepath.Join(dir, "crafted.omsidx")
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		ix, err := OpenFile(path)
		if err == nil {
			if cerr := ix.Close(); cerr != nil {
				t.Fatal(cerr)
			}
		}
		return err
	}

	cases := []corruptionCase{
		{"empty", func(img []byte) []byte { return nil }, "truncated"},
		{"bad magic", func(img []byte) []byte { img[0] = 'X'; return img }, "bad magic"},
		{"newer version", func(img []byte) []byte { img[6] = 99; return img }, "index version 99 is newer"},
		{"older version", func(img []byte) []byte { img[6] = 2; return img }, "index version 2 predates"},
		{"truncated header", func(img []byte) []byte { return img[:10] }, "truncated"},
		{"truncated mid-body", func(img []byte) []byte { return img[:len(img)/2] }, "truncated"},
		{"trailing garbage", func(img []byte) []byte { return append(img, 0xAA) }, "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := append([]byte(nil), valid...)
			img = tc.mutate(img)
			err := open(img)
			if err == nil {
				t.Fatalf("OpenFile accepted a %s index", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	// A flipped word bit is structurally invisible to OpenFile but must
	// be caught by the explicit Verify pass.
	img := append([]byte(nil), valid...)
	img[len(img)-100] ^= 0x40
	path := filepath.Join(dir, "flipped.omsidx")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	ix, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile rejected a structurally valid image: %v", err)
	}
	defer ix.Close()
	if err := ix.Verify(); err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("Verify on a flipped-bit image: got %v, want corruption error", err)
	}
	// The pristine image must still open.
	if err := open(append([]byte(nil), valid...)); err != nil {
		t.Fatalf("pristine image failed to open: %v", err)
	}
}

// TestSavePartitionedRoundTrip pins the partition writer/opener pair:
// the manifest fences tile the library, the concatenated partitions
// reproduce the library entry for entry and word for word, and the
// skipped count survives.
func TestSavePartitionedRoundTrip(t *testing.T) {
	ds := testWorkload(t)
	p := testParams(512, 100, 3)
	built := buildEngine(t, p, ds.Library)
	lib := built.Library()
	lib.Skipped = 7 // force a nonzero skipped count through the round trip

	for _, parts := range []int{1, 2, 3, 7} {
		t.Run(fmt.Sprintf("parts%d", parts), func(t *testing.T) {
			dir := t.TempDir()
			manifest := filepath.Join(dir, "lib.manifest")
			if err := SavePartitioned(manifest, p, lib, parts); err != nil {
				t.Fatal(err)
			}
			if kind, err := DetectKind(manifest); err != nil || kind != KindManifest {
				t.Fatalf("DetectKind(manifest) = %v, %v", kind, err)
			}
			if kind, err := DetectKind(PartitionFileName(manifest, 0)); err != nil || kind != KindIndex {
				t.Fatalf("DetectKind(partition) = %v, %v", kind, err)
			}
			pi, err := OpenManifest(manifest)
			if err != nil {
				t.Fatal(err)
			}
			defer pi.Close()
			if got := len(pi.Parts); got != parts {
				t.Fatalf("%d partitions opened, want %d", got, parts)
			}
			if pi.State.TotalRefs() != lib.Len() || pi.State.Skipped != lib.Skipped {
				t.Fatalf("manifest identity %d/%d, want %d/%d",
					pi.State.TotalRefs(), pi.State.Skipped, lib.Len(), lib.Skipped)
			}
			if err := pi.VerifyPartitions(); err != nil {
				t.Fatalf("VerifyPartitions: %v", err)
			}
			skippedSum, row := 0, 0
			states := pi.State.Partitions()
			for pidx, part := range pi.Parts {
				info := states[pidx]
				if info.StartRow != row {
					t.Fatalf("partition %d starts at %d, want %d", pidx, info.StartRow, row)
				}
				skippedSum += part.Lib.Skipped
				for i := 0; i < part.Lib.Len(); i++ {
					if part.Lib.Entries[i] != lib.Entries[row] {
						t.Fatalf("global row %d (partition %d row %d) entry mismatch", row, pidx, i)
					}
					if !part.Lib.HVs[i].Equal(lib.HVs[row]) {
						t.Fatalf("global row %d hypervector mismatch", row)
					}
					row++
				}
			}
			if row != lib.Len() {
				t.Fatalf("partitions concatenate to %d rows, want %d", row, lib.Len())
			}
			if skippedSum != lib.Skipped {
				t.Fatalf("partition skipped counts sum to %d, want %d", skippedSum, lib.Skipped)
			}
		})
	}
}

// TestOpenManifestRejectsTampering pins the manifest cross-checks:
// size drift, fence edits and missing partitions are all refused.
func TestOpenManifestRejectsTampering(t *testing.T) {
	ds := testWorkload(t)
	p := testParams(512, 0, 3)
	built := buildEngine(t, p, ds.Library)
	dir := t.TempDir()
	manifest := filepath.Join(dir, "lib.manifest")
	if err := SavePartitioned(manifest, p, built.Library(), 2); err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, from, to, wantSub string
	}{
		{"fence edit", `"min_mass"`, `"min_mass_x"`, "fences"},
		{"format edit", ManifestFormat, "something-else", "not a library manifest"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tampered := resealRecordLine(t, strings.Replace(string(doc), tc.from, tc.to, 1))
			path := filepath.Join(dir, "tampered.manifest")
			if err := os.WriteFile(path, tampered, 0o644); err != nil {
				t.Fatal(err)
			}
			// Tampered manifests reference the same partition files.
			if _, err := os.Stat(PartitionFileName(manifest, 0)); err != nil {
				t.Fatal(err)
			}
			if _, err := OpenManifest(path); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("OpenManifest(%s) = %v, want %q", tc.name, err, tc.wantSub)
			}
		})
	}

	t.Run("edit without resealing the record CRC", func(t *testing.T) {
		// Any byte-level edit that is not re-sealed trips the per-record
		// checksum before the structural checks even run.
		tampered := strings.Replace(string(doc), `"refs"`, `"refsx"`, 1)
		path := filepath.Join(dir, "unsealed.manifest")
		if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenManifest(path); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("OpenManifest(unsealed edit) = %v, want checksum error", err)
		}
	})

	t.Run("mixed build generation", func(t *testing.T) {
		// A partition file rebuilt with a different encoder seed is the
		// same size (identical masses, entries, word counts) and passes
		// every structural check — only the params comparison can catch
		// it before it silently mis-scores queries.
		other := p
		other.Accel.Seed = p.Accel.Seed + 1
		otherDir := t.TempDir()
		otherManifest := filepath.Join(otherDir, "lib.manifest")
		if err := SavePartitioned(otherManifest, other, built.Library(), 2); err != nil {
			t.Fatal(err)
		}
		mixed := filepath.Join(dir, "mixed.manifest")
		doc, err := os.ReadFile(manifest)
		if err != nil {
			t.Fatal(err)
		}
		// The mixed manifest reuses partition 0 from the other build by
		// pointing at a copy dropped next to it.
		swapped, err := os.ReadFile(PartitionFileName(otherManifest, 0))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(PartitionFileName(mixed, 0), swapped, 0o644); err != nil {
			t.Fatal(err)
		}
		orig, err := os.ReadFile(PartitionFileName(manifest, 1))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(PartitionFileName(mixed, 1), orig, 0o644); err != nil {
			t.Fatal(err)
		}
		mixedDoc := resealRecordLine(t, strings.ReplaceAll(string(doc), filepath.Base(manifest), filepath.Base(mixed)))
		if err := os.WriteFile(mixed, mixedDoc, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenManifest(mixed); err == nil || !strings.Contains(err.Error(), "different params") {
			t.Fatalf("OpenManifest with a mixed-generation partition = %v, want params mismatch", err)
		}
	})

	t.Run("size drift", func(t *testing.T) {
		part := PartitionFileName(manifest, 1)
		f, err := os.OpenFile(part, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0}); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenManifest(manifest); err == nil || !strings.Contains(err.Error(), "bytes") {
			t.Fatalf("OpenManifest with size drift = %v, want size mismatch", err)
		}
	})

	t.Run("missing partition", func(t *testing.T) {
		if err := os.Remove(PartitionFileName(manifest, 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenManifest(manifest); err == nil {
			t.Fatal("OpenManifest accepted a manifest with a missing partition file")
		}
	})
}
