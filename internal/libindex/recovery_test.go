package libindex

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hdc"
)

// recoveryFixture builds a small partitioned manifest with one delta
// generation already published and returns its path.
func recoveryFixture(t *testing.T) string {
	t.Helper()
	manifest := filepath.Join(t.TempDir(), "lib.manifest")
	p, lib := syntheticLibrary(t, 10, 128)
	if err := SavePartitioned(manifest, p, lib, 2); err != nil {
		t.Fatal(err)
	}
	appendSyntheticDelta(t, manifest, "d1", 4)
	return manifest
}

// appendSyntheticDelta publishes n synthetic rows as one delta
// generation.
func appendSyntheticDelta(t *testing.T, manifest, tag string, n int) uint64 {
	t.Helper()
	st, err := LoadManifestLog(manifest)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(len(tag)) * 7919))
	entries := make([]core.LibraryEntry, n)
	hvs := make([]hdc.BinaryHV, n)
	for i := range entries {
		entries[i] = core.LibraryEntry{
			ID:      fmt.Sprintf("%s-%d", tag, i),
			Peptide: fmt.Sprintf("PEP%s%d", tag, i),
			Mass:    501 + float64(i)*0.83,
		}
		hvs[i] = hdc.RandomBinaryHV(128, rng)
	}
	dlib, err := core.RestoreLibrary(entries, hvs, rng.Perm(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := AppendDelta(manifest, st, dlib, 3)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// TestCrashRecoveryOrphanedDelta simulates a writer that crashed
// between writing its delta partition files and appending the
// manifest record: the manifest must keep opening at the last good
// generation, SweepOrphans must remove exactly the never-referenced
// leftovers, and the next append must publish cleanly over them.
func TestCrashRecoveryOrphanedDelta(t *testing.T) {
	manifest := recoveryFixture(t)
	before, err := OpenManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	wantGen := before.State.Generation
	wantRefs := before.State.TotalRefs()
	liveFile := before.State.Partitions()[0].File
	if err := before.Close(); err != nil {
		t.Fatal(err)
	}

	// The "crash": a fully written partition file for the generation
	// that never published, plus a temp file abandoned mid-rename.
	img, err := os.ReadFile(filepath.Join(filepath.Dir(manifest), liveFile))
	if err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Base(GenPartitionFileName(manifest, wantGen+1, 0))
	for _, name := range []string{orphan, orphan + ".tmp"} {
		if err := os.WriteFile(filepath.Join(filepath.Dir(manifest), name), img, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	pi, err := OpenManifest(manifest)
	if err != nil {
		t.Fatalf("orphaned partition files must not affect opening: %v", err)
	}
	if pi.State.Generation != wantGen || pi.State.TotalRefs() != wantRefs {
		t.Fatalf("opened generation %d with %d refs, want %d with %d",
			pi.State.Generation, pi.State.TotalRefs(), wantGen, wantRefs)
	}
	if err := pi.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := LoadManifestLog(manifest)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := SweepOrphans(manifest, st)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(removed)
	want := []string{orphan, orphan + ".tmp"}
	sort.Strings(want)
	if len(removed) != len(want) || removed[0] != want[0] || removed[1] != want[1] {
		t.Fatalf("SweepOrphans removed %v, want %v", removed, want)
	}
	for _, name := range want {
		if _, err := os.Stat(filepath.Join(filepath.Dir(manifest), name)); !os.IsNotExist(err) {
			t.Fatalf("%s still on disk after sweep", name)
		}
	}

	// The next append reuses the orphan's generation number and file
	// names without tripping over the leftovers.
	gen := appendSyntheticDelta(t, manifest, "d2", 3)
	if gen != wantGen+1 {
		t.Fatalf("post-crash append published generation %d, want %d", gen, wantGen+1)
	}
	pi, err = OpenManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	defer pi.Close()
	if err := pi.VerifyPartitions(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryTornTail simulates a crash mid-record-append: the
// unterminated garbage fragment must be ignored (last good generation
// serves), and the next publish must truncate it and append cleanly.
func TestCrashRecoveryTornTail(t *testing.T) {
	manifest := recoveryFixture(t)
	st, err := LoadManifestLog(manifest)
	if err != nil {
		t.Fatal(err)
	}
	wantGen := st.Generation

	f, err := os.OpenFile(manifest, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"delta","generation":` + fmt.Sprint(wantGen+1) + `,"partit`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st, err = LoadManifestLog(manifest)
	if err != nil {
		t.Fatalf("torn tail must not reject the log: %v", err)
	}
	if !st.TornTail() {
		t.Fatal("torn tail not reported")
	}
	if st.Generation != wantGen {
		t.Fatalf("torn log folded to generation %d, want last good %d", st.Generation, wantGen)
	}
	pi, err := OpenManifest(manifest)
	if err != nil {
		t.Fatalf("torn tail must not reject opening: %v", err)
	}
	if pi.State.Generation != wantGen {
		t.Fatalf("opened generation %d, want %d", pi.State.Generation, wantGen)
	}
	if err := pi.Close(); err != nil {
		t.Fatal(err)
	}

	// Publishing over the torn tail truncates the fragment; the log is
	// then fully clean again.
	gen := appendSyntheticDelta(t, manifest, "d3", 2)
	if gen != wantGen+1 {
		t.Fatalf("repairing append published generation %d, want %d", gen, wantGen+1)
	}
	st, err = LoadManifestLog(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if st.TornTail() || st.Generation != wantGen+1 {
		t.Fatalf("after repair: torn=%v generation=%d, want clean generation %d",
			st.TornTail(), st.Generation, wantGen+1)
	}
}

// TestCrashRecoveryUnterminatedValidTail covers the other torn-append
// shape: the record fully made it to disk but its newline did not. The
// record must be honored, and the next append must repair the missing
// terminator instead of gluing two records onto one line.
func TestCrashRecoveryUnterminatedValidTail(t *testing.T) {
	manifest := recoveryFixture(t)
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("fixture log does not end in a newline")
	}
	if err := os.WriteFile(manifest, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := LoadManifestLog(manifest)
	if err != nil {
		t.Fatalf("valid unterminated tail must be honored: %v", err)
	}
	if st.TornTail() {
		t.Fatal("valid unterminated record misreported as torn")
	}
	wantGen := st.Generation

	gen := appendSyntheticDelta(t, manifest, "d4", 2)
	if gen != wantGen+1 {
		t.Fatalf("append over unterminated tail published generation %d, want %d", gen, wantGen+1)
	}
	st, err = LoadManifestLog(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != wantGen+1 {
		t.Fatalf("after repairing append: generation %d, want %d", st.Generation, wantGen+1)
	}
}

// TestRetiredFilesSurviveSweepOrphans pins the two-sweep split: files
// a compaction retired are NOT orphans (an older reader may still be
// serving them) — only SweepRetired removes them.
func TestRetiredFilesSurviveSweepOrphans(t *testing.T) {
	manifest := recoveryFixture(t)
	stats, err := Compact(manifest, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Noop || stats.DroppedPartitions == 0 {
		t.Fatalf("fixture compaction dropped nothing: %+v", stats)
	}

	st, err := LoadManifestLog(manifest)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := SweepOrphans(manifest, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("SweepOrphans removed retired files %v", removed)
	}
	retired, err := SweepRetired(manifest, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(retired) != stats.DroppedPartitions {
		t.Fatalf("SweepRetired removed %d files, compaction dropped %d", len(retired), stats.DroppedPartitions)
	}
	pi, err := OpenManifest(manifest)
	if err != nil {
		t.Fatalf("manifest must open after both sweeps: %v", err)
	}
	defer pi.Close()
	if err := pi.VerifyPartitions(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenManifestVersionMessages pins the operator-facing errors for
// manifests this build cannot serve: a pre-log whole-document
// manifest says "rebuild", a future version says "upgrade".
func TestOpenManifestVersionMessages(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"legacy-v3", `{"format":"oms-library-manifest","version":3,"partitions":[]}`, "predates the generation log"},
		{"future-v5", `{"format":"oms-library-manifest","version":5}`, "newer than this build understands"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			manifest := filepath.Join(t.TempDir(), "lib.manifest")
			if err := os.WriteFile(manifest, []byte(tc.doc+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := OpenManifest(manifest)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("OpenManifest error = %v, want %q", err, tc.want)
			}
		})
	}
}
