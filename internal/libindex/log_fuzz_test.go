package libindex

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/hdc"
)

// FuzzManifestLog drives crafted manifest generation logs through the
// fold (ParseManifestLog) and the full opener (OpenManifest, run next
// to a real partition-file set). Neither may panic. A log the fold
// accepts must describe an internally consistent state — contiguous
// generations folded to completion, ascending non-overlapping base
// fences, positive row counts — and a log the opener accepts must
// additionally verify against the partition files byte for byte:
// OpenManifest never serves a partially-applied generation. Structure
// -aware seeds start from a real append/retract/compact history and
// plant the interesting corruptions: a crash-truncated tail, a
// duplicated generation, a tombstone for an id no partition carries,
// and a delta record referencing a partition file that does not exist.
func FuzzManifestLog(f *testing.F) {
	dir, manifest := fuzzManifestFixture(f)
	logBytes, err := os.ReadFile(manifest)
	if err != nil {
		f.Fatal(err)
	}
	var partFiles []string
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(manifest) {
			partFiles = append(partFiles, e.Name())
		}
	}

	st, err := ParseManifestLog(logBytes)
	if err != nil {
		f.Fatal(err)
	}
	lines := bytes.SplitAfter(logBytes, []byte("\n"))

	f.Add(logBytes)
	// Crash-truncated tails: mid-final-record and mid-log.
	f.Add(logBytes[:len(logBytes)-9])
	f.Add(logBytes[:len(logBytes)/2])
	// Duplicate generation: the last record replayed verbatim.
	f.Add(append(append([]byte{}, logBytes...), lines[len(lines)-2]...))
	// Tombstone for an id no partition carries: the fold accepts it
	// (presence is an open-time property), the opener must reject.
	ghost, err := marshalRecord(LogRecord{
		Type: recordRetract, Generation: st.Generation + 1, Ids: []string{"no-such-id"},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(append([]byte{}, logBytes...), ghost...))
	// Delta record referencing a missing partition file.
	missing, err := marshalRecord(LogRecord{
		Type: recordDelta, Generation: st.Generation + 1,
		Partitions: []PartitionInfo{{
			File: filepath.Base(manifest) + ".g000099.part000",
			Refs: 3, MinMass: 500, MaxMass: 501, Bytes: 128, CRC32C: 1,
		}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(append([]byte{}, logBytes...), missing...))
	// Non-log documents: empty, garbage, a legacy whole-document
	// manifest, and a single unsealed record.
	f.Add([]byte{})
	f.Add([]byte("not a log\n"))
	f.Add([]byte(`{"format":"oms-library-manifest","version":3,"partitions":[]}`))
	f.Add([]byte(`{"type":"base","generation":1}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, perr := ParseManifestLog(data)
		if perr == nil {
			checkFoldedState(t, st)
		}

		// The same bytes as an on-disk manifest next to the real
		// partition files: the opener must reject or serve a fully
		// consistent generation.
		td := t.TempDir()
		for _, name := range partFiles {
			if err := os.Link(filepath.Join(dir, name), filepath.Join(td, name)); err != nil {
				t.Fatal(err)
			}
		}
		mpath := filepath.Join(td, filepath.Base(manifest))
		if err := os.WriteFile(mpath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		pi, oerr := OpenManifest(mpath)
		if oerr != nil {
			return
		}
		defer pi.Close()
		if perr != nil {
			t.Fatalf("OpenManifest accepted a log the fold rejects: %v", perr)
		}
		if pi.State.Generation != st.Generation {
			t.Fatalf("OpenManifest serves generation %d, the fold says %d", pi.State.Generation, st.Generation)
		}
		states := pi.State.Partitions()
		if len(pi.Parts) != len(states) {
			t.Fatalf("OpenManifest holds %d partitions, the fold says %d", len(pi.Parts), len(states))
		}
		for i, part := range pi.Parts {
			if part.Lib == nil || part.Lib.Len() != states[i].Refs {
				t.Fatalf("partition %d: %d loaded rows, record says %d", i, part.Lib.Len(), states[i].Refs)
			}
		}
		if err := pi.VerifyPartitions(); err != nil {
			t.Fatalf("OpenManifest accepted a manifest VerifyPartitions rejects: %v", err)
		}
	})
}

// checkFoldedState asserts the invariants every accepted fold must
// satisfy, whatever bytes produced it.
func checkFoldedState(t *testing.T, st *ManifestState) {
	t.Helper()
	if st.Generation < 1 {
		t.Fatalf("accepted log folded to generation %d", st.Generation)
	}
	if st.D <= 0 {
		t.Fatalf("accepted log folded to dimension %d", st.D)
	}
	if len(st.Base)+len(st.Deltas) == 0 {
		t.Fatal("accepted log folded to no live partitions")
	}
	if st.TotalRefs() <= 0 {
		t.Fatalf("accepted log folded to %d references", st.TotalRefs())
	}
	for i, p := range st.Base {
		if p.Refs <= 0 {
			t.Fatalf("base partition %d has %d refs", i, p.Refs)
		}
		if p.MinMass > p.MaxMass {
			t.Fatalf("base partition %d fences inverted: [%g, %g]", i, p.MinMass, p.MaxMass)
		}
		if i > 0 && p.MinMass < st.Base[i-1].MaxMass {
			t.Fatalf("base partitions %d/%d overlap: %g < %g", i-1, i, p.MinMass, st.Base[i-1].MaxMass)
		}
		if p.Gen < 1 || p.Gen > st.Generation {
			t.Fatalf("base partition %d carries generation %d of %d", i, p.Gen, st.Generation)
		}
	}
	for i, p := range st.Deltas {
		if p.Refs <= 0 {
			t.Fatalf("delta partition %d has %d refs", i, p.Refs)
		}
		if !p.Delta {
			t.Fatalf("delta partition %d not tagged as delta tier", i)
		}
		if p.Gen < 2 || p.Gen > st.Generation {
			t.Fatalf("delta partition %d carries generation %d of %d", i, p.Gen, st.Generation)
		}
	}
	for id, gen := range st.Tombstones {
		if gen < 2 || gen > st.Generation {
			t.Fatalf("tombstone %q carries generation %d of %d", id, gen, st.Generation)
		}
	}
}

// fuzzManifestFixture builds a real manifest history on disk — base
// build, two delta appends (one re-adding an existing id), a
// retraction, a compaction, then one more delta so the final state
// carries every record type — and returns its directory and path.
func fuzzManifestFixture(f *testing.F) (dir, manifest string) {
	f.Helper()
	dir = f.TempDir()
	manifest = filepath.Join(dir, "lib.manifest")
	p, lib := syntheticLibrary(f, 12, 128)
	if err := SavePartitioned(manifest, p, lib, 3); err != nil {
		f.Fatal(err)
	}
	appendSynthetic := func(tag string, n int, readd string) {
		st, err := LoadManifestLog(manifest)
		if err != nil {
			f.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(len(tag))))
		entries := make([]core.LibraryEntry, n)
		hvs := make([]hdc.BinaryHV, n)
		for i := range entries {
			entries[i] = core.LibraryEntry{
				ID:      fmt.Sprintf("%s-%d", tag, i),
				Peptide: fmt.Sprintf("PEP%s%d", tag, i),
				Mass:    502 + float64(i)*0.61,
			}
			hvs[i] = hdc.RandomBinaryHV(128, rng)
		}
		if readd != "" {
			entries[0].ID = readd
		}
		dlib, err := core.RestoreLibrary(entries, hvs, rng.Perm(n), 0)
		if err != nil {
			f.Fatal(err)
		}
		if _, err := AppendDelta(manifest, st, dlib, 2); err != nil {
			f.Fatal(err)
		}
	}
	appendSynthetic("da", 4, "")
	appendSynthetic("db", 3, "ref-3")
	st, err := LoadManifestLog(manifest)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := AppendRetract(manifest, st, []string{"ref-5"}, map[string]bool{"ref-5": true}); err != nil {
		f.Fatal(err)
	}
	if _, err := Compact(manifest, 6); err != nil {
		f.Fatal(err)
	}
	appendSynthetic("dc", 3, "")
	return dir, manifest
}
