package libindex

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hdc"
	"repro/internal/msdata"
	"repro/internal/spectrum"
)

// testParams returns a small but non-degenerate engine configuration.
func testParams(d, shardSize, precision int) core.Params {
	p := core.DefaultParams()
	p.Accel.D = d
	p.Accel.NumChunks = max(d/32, 32)
	p.Accel.IDPrecision = precision
	p.ShardSize = shardSize
	return p
}

// testWorkload generates a small dataset shared by the tests.
func testWorkload(t testing.TB) *msdata.Dataset {
	t.Helper()
	cfg := msdata.IPRG2012(0.001)
	ds, err := msdata.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// buildEngine builds the exact engine and returns it with its library.
func buildEngine(t testing.TB, p core.Params, library []*spectrum.Spectrum) *core.Engine {
	t.Helper()
	engine, _, err := core.BuildExact(p, library)
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// TestRoundTripSearchIdentical pins the core contract: save → load →
// search is bit-identical to searching with the freshly built engine,
// across dimensions, shard sizes and ID precisions.
func TestRoundTripSearchIdentical(t *testing.T) {
	ds := testWorkload(t)
	cases := []struct{ d, shard, precision int }{
		{512, 0, 3},
		{1024, 64, 1},
		{2048, 128, 2},
		{1000, 96, 3}, // non-multiple-of-64 dimension exercises the tail mask
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("D%d/shard%d/p%d", tc.d, tc.shard, tc.precision), func(t *testing.T) {
			p := testParams(tc.d, tc.shard, tc.precision)
			built := buildEngine(t, p, ds.Library)

			var buf bytes.Buffer
			if err := Save(&buf, p, built.Library()); err != nil {
				t.Fatalf("Save: %v", err)
			}
			lp, lib, err := Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if lp.Accel.D != p.Accel.D || lp.Accel.IDPrecision != p.Accel.IDPrecision ||
				lp.Accel.Seed != p.Accel.Seed || lp.ShardSize != p.ShardSize {
				t.Fatalf("params round-trip mismatch: saved %+v loaded %+v", p.Accel, lp.Accel)
			}
			loaded, _, err := core.NewExactEngineFromLibrary(lp, lib)
			if err != nil {
				t.Fatalf("NewExactEngineFromLibrary: %v", err)
			}

			// Library-level identity.
			if lib.Len() != built.Library().Len() || lib.Skipped != built.Library().Skipped {
				t.Fatalf("library size mismatch: loaded %d/%d, built %d/%d",
					lib.Len(), lib.Skipped, built.Library().Len(), built.Library().Skipped)
			}
			for i := 0; i < lib.Len(); i++ {
				if lib.Entries[i] != built.Library().Entries[i] {
					t.Fatalf("entry %d mismatch: %+v vs %+v", i, lib.Entries[i], built.Library().Entries[i])
				}
				if !lib.HVs[i].Equal(built.Library().HVs[i]) {
					t.Fatalf("hypervector %d differs after round trip", i)
				}
				if lib.SourcePos(i) != built.Library().SourcePos(i) {
					t.Fatalf("source position %d mismatch", i)
				}
			}

			// PSM-for-PSM identity on the full query set.
			want, err := built.SearchAll(ds.Queries)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.SearchAll(ds.Queries)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("PSM count mismatch: loaded %d, built %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("PSM %d mismatch:\nloaded %+v\nbuilt  %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestPackedStoreMatchesIndex verifies the loaded engine's packed rows
// are bit-identical to the saved hypervector words, through the
// sharded searcher's PackedRow accessor.
func TestPackedStoreMatchesIndex(t *testing.T) {
	ds := testWorkload(t)
	p := testParams(512, 100, 3)
	built := buildEngine(t, p, ds.Library)

	var buf bytes.Buffer
	if err := Save(&buf, p, built.Library()); err != nil {
		t.Fatal(err)
	}
	lp, lib, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := hdc.NewShardedSearcher(lib.HVs, lp.ShardSize)
	if err != nil {
		t.Fatal(err)
	}
	words := hdc.WordsPerHV(p.Accel.D)
	for i := 0; i < lib.Len(); i++ {
		row := s.PackedRow(i)
		if len(row) != words {
			t.Fatalf("row %d has %d words, want %d", i, len(row), words)
		}
		for w, v := range row {
			if v != built.Library().HVs[i].Words[w] {
				t.Fatalf("row %d word %d differs from built library", i, w)
			}
		}
	}
}

// TestRoundTripCascadeParams pins that the cascade knobs ride the
// params JSON: an index built with a two-tier cascade configuration
// reloads with the same knobs, the loaded engine actually runs the
// cascade (pruning counters move), and its results stay PSM-for-PSM
// identical to the freshly built cascade engine — and, exact mode
// being exact, to a single-tier engine over the same library.
func TestRoundTripCascadeParams(t *testing.T) {
	ds := testWorkload(t)
	p := testParams(1024, 64, 3)
	p.PrefilterWords = 4
	built := buildEngine(t, p, ds.Library)

	var buf bytes.Buffer
	if err := Save(&buf, p, built.Library()); err != nil {
		t.Fatal(err)
	}
	lp, lib, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if lp.PrefilterWords != p.PrefilterWords || lp.ShortlistPerQuery != p.ShortlistPerQuery {
		t.Fatalf("cascade knobs did not round-trip: saved %d/%d, loaded %d/%d",
			p.PrefilterWords, p.ShortlistPerQuery, lp.PrefilterWords, lp.ShortlistPerQuery)
	}
	loaded, _, err := core.NewExactEngineFromLibrary(lp, lib)
	if err != nil {
		t.Fatal(err)
	}
	want, err := built.SearchAll(ds.Queries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.SearchAll(ds.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("PSM count mismatch: loaded %d, built %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PSM %d mismatch:\nloaded %+v\nbuilt  %+v", i, got[i], want[i])
		}
	}
	if cs, ok := loaded.CascadeStats(); !ok || cs.Prefiltered() == 0 {
		t.Fatalf("loaded engine did not run the cascade: stats %+v ok=%v", cs, ok)
	}
	// Loader overrides: -prefilter-words 0 must fall back to the
	// single-tier layout with identical results.
	flat := lp
	flat.PrefilterWords, flat.ShortlistPerQuery = 0, 0
	flatEngine, _, err := core.NewExactEngineFromLibrary(flat, lib)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := flatEngine.CascadeStats(); ok {
		t.Fatal("single-tier override still reports cascade stats")
	}
	flatPSMs, err := flatEngine.SearchAll(ds.Queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if flatPSMs[i] != want[i] {
			t.Fatalf("exact cascade diverged from single-tier on PSM %d: %+v vs %+v", i, flatPSMs[i], want[i])
		}
	}
}

// TestRoundTripSingleEntry pins the degenerate 1-entry library through
// Save/Load and engine reconstruction (the 0-entry case is rejected by
// Save and BuildLibrary).
func TestRoundTripSingleEntry(t *testing.T) {
	ds := testWorkload(t)
	p := testParams(512, 0, 3)
	built := buildEngine(t, p, ds.Library[:1])
	if built.Library().Len() != 1 {
		t.Fatalf("library has %d entries, want 1", built.Library().Len())
	}
	path := t.TempDir() + "/one.omsidx"
	if err := SaveFile(path, p, built.Library()); err != nil {
		t.Fatal(err)
	}
	lp, lib, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 1 || lib.SourcePos(0) != 0 {
		t.Fatalf("loaded %d entries, srcPos(0)=%d", lib.Len(), lib.SourcePos(0))
	}
	loaded, _, err := core.NewExactEngineFromLibrary(lp, lib)
	if err != nil {
		t.Fatal(err)
	}
	want, err := built.SearchAll(ds.Queries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.SearchAll(ds.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("PSM count mismatch: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PSM %d mismatch on single-entry library", i)
		}
	}
}

// TestRoundTripEntropyLayout pins the version-3 permutation section:
// an entropy-laid-out library round-trips its bit-layout permutation
// through Save/Load, the loaded engine searches PSM-for-PSM
// identically to the built one, and — the exactness claim — both agree
// with a natural-layout build of the same library.
func TestRoundTripEntropyLayout(t *testing.T) {
	ds := testWorkload(t)
	p := testParams(1024, 64, 3)
	p.Tiers = []int{2, 4, 10}
	p.BitLayout = core.BitLayoutEntropy
	built := buildEngine(t, p, ds.Library)
	if len(built.Library().DimPerm) == 0 {
		t.Fatal("entropy build produced no bit-layout permutation")
	}

	var buf bytes.Buffer
	if err := Save(&buf, p, built.Library()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	lp, lib, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if lp.BitLayout != core.BitLayoutEntropy || len(lp.Tiers) != 3 {
		t.Fatalf("layout knobs did not round-trip: %+v", lp)
	}
	if !permsEqual(lib.DimPerm, built.Library().DimPerm) {
		t.Fatalf("bit-layout permutation did not round-trip: %d vs %d entries",
			len(lib.DimPerm), len(built.Library().DimPerm))
	}
	loaded, _, err := core.NewExactEngineFromLibrary(lp, lib)
	if err != nil {
		t.Fatal(err)
	}
	want, err := built.SearchAll(ds.Queries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.SearchAll(ds.Queries)
	if err != nil {
		t.Fatal(err)
	}
	natural := p
	natural.BitLayout = core.BitLayoutNatural
	natEngine := buildEngine(t, natural, ds.Library)
	natPSMs, err := natEngine.SearchAll(ds.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(natPSMs) != len(want) {
		t.Fatalf("PSM counts diverge: loaded %d, built %d, natural %d", len(got), len(want), len(natPSMs))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PSM %d mismatch after round trip:\nloaded %+v\nbuilt  %+v", i, got[i], want[i])
		}
		if natPSMs[i] != want[i] {
			t.Fatalf("entropy layout changed PSM %d vs natural layout:\nentropy %+v\nnatural %+v", i, want[i], natPSMs[i])
		}
	}
}

// fixCRC recomputes the CRC-32C trailer after a deliberate mutation,
// so a test can craft a structurally valid but semantically bad image.
func fixCRC(img []byte) {
	binary.LittleEndian.PutUint32(img[len(img)-4:], crc32.Checksum(img[:len(img)-4], castagnoli))
}

// permSectionOffset locates the version-3 perm-length field in an
// index image (fixed 36-byte header, then the params JSON).
func permSectionOffset(img []byte) int {
	return 36 + int(binary.LittleEndian.Uint32(img[32:36]))
}

// TestLoadRejectsNonBijectivePerm pins that both loaders reject a
// checksummed image whose stored permutation is not a bijection — the
// invariant that keeps permuted search exact.
func TestLoadRejectsNonBijectivePerm(t *testing.T) {
	ds := testWorkload(t)
	p := testParams(512, 0, 3)
	p.BitLayout = core.BitLayoutEntropy
	built := buildEngine(t, p, ds.Library)
	if len(built.Library().DimPerm) == 0 {
		t.Fatal("entropy build produced no bit-layout permutation")
	}
	var buf bytes.Buffer
	if err := Save(&buf, p, built.Library()); err != nil {
		t.Fatal(err)
	}
	img := append([]byte(nil), buf.Bytes()...)
	// Duplicate perm entry 0 into entry 1 and re-seal the checksum:
	// structurally perfect, semantically a non-bijection.
	off := permSectionOffset(img)
	copy(img[off+8:off+12], img[off+4:off+8])
	fixCRC(img)
	if _, _, err := Load(bytes.NewReader(img)); err == nil || !strings.Contains(err.Error(), "not a bijection") {
		t.Fatalf("streaming loader: got %v, want a not-a-bijection rejection", err)
	}
	path := t.TempDir() + "/dup.omsidx"
	if err := writeFile(path, img); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil || !strings.Contains(err.Error(), "not a bijection") {
		t.Fatalf("mmap loader: got %v, want a not-a-bijection rejection", err)
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// corruptionCase mutates a valid index image and names the failure it
// should provoke.
type corruptionCase struct {
	name    string
	mutate  func(img []byte) []byte
	wantSub string
}

// TestLoadRejectsCorruption pins that truncated, corrupted and
// wrong-version files are rejected with descriptive errors.
func TestLoadRejectsCorruption(t *testing.T) {
	ds := testWorkload(t)
	p := testParams(512, 0, 3)
	built := buildEngine(t, p, ds.Library)
	var buf bytes.Buffer
	if err := Save(&buf, p, built.Library()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	cases := []corruptionCase{
		{
			name:    "empty",
			mutate:  func(img []byte) []byte { return nil },
			wantSub: "truncated",
		},
		{
			name:    "bad magic",
			mutate:  func(img []byte) []byte { img[0] = 'X'; return img },
			wantSub: "bad magic",
		},
		{
			name:    "newer version",
			mutate:  func(img []byte) []byte { img[6] = 99; return img },
			wantSub: "index version 99 is newer",
		},
		{
			name:    "older version",
			mutate:  func(img []byte) []byte { img[6] = 2; return img },
			wantSub: "index version 2 predates the bit-layout permutation",
		},
		{
			name:    "truncated header",
			mutate:  func(img []byte) []byte { return img[:10] },
			wantSub: "truncated",
		},
		{
			name:    "truncated mid-body",
			mutate:  func(img []byte) []byte { return img[:len(img)/2] },
			wantSub: "truncated",
		},
		{
			name:    "truncated checksum",
			mutate:  func(img []byte) []byte { return img[:len(img)-2] },
			wantSub: "truncated",
		},
		{
			// Flip a bit deep in the packed-words section: structurally
			// valid, caught only by the checksum.
			name:    "flipped body bit",
			mutate:  func(img []byte) []byte { img[len(img)-100] ^= 0x40; return img },
			wantSub: "corrupted",
		},
		{
			name:    "flipped checksum bit",
			mutate:  func(img []byte) []byte { img[len(img)-1] ^= 0x01; return img },
			wantSub: "corrupted",
		},
		{
			name:    "trailing garbage",
			mutate:  func(img []byte) []byte { return append(img, 0xAA) },
			wantSub: "trailing data",
		},
		{
			// Header entry count beyond the hard bound fails before any
			// section allocation.
			name: "absurd entry count",
			mutate: func(img []byte) []byte {
				binary.LittleEndian.PutUint64(img[16:24], 1<<60)
				return img
			},
			wantSub: "implausible entry count",
		},
		{
			// A large-but-bounded crafted count must fail on truncation
			// (chunk-growing section reads track the actual file size)
			// rather than attempting a count-sized allocation.
			name: "inflated entry count",
			mutate: func(img []byte) []byte {
				binary.LittleEndian.PutUint64(img[16:24], 1<<27)
				return img
			},
			wantSub: "truncated",
		},
		{
			// A perm length that is neither 0 nor d fails before any perm
			// entry is read (and before the checksum, so no re-CRC here).
			name: "bad perm length",
			mutate: func(img []byte) []byte {
				off := permSectionOffset(img)
				binary.LittleEndian.PutUint32(img[off:off+4], 7)
				return img
			},
			wantSub: "bit-layout permutation has 7 entries",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := append([]byte(nil), valid...)
			img = tc.mutate(img)
			_, _, err := Load(bytes.NewReader(img))
			if err == nil {
				t.Fatalf("Load accepted a %s index", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
	// The pristine image must still load after all that slicing.
	if _, _, err := Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("pristine image failed to load: %v", err)
	}
}

// TestSaveFileLoadFile exercises the atomic file path.
func TestSaveFileLoadFile(t *testing.T) {
	ds := testWorkload(t)
	p := testParams(512, 0, 3)
	built := buildEngine(t, p, ds.Library)
	path := t.TempDir() + "/lib.omsidx"
	if err := SaveFile(path, p, built.Library()); err != nil {
		t.Fatal(err)
	}
	lp, lib, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != built.Library().Len() {
		t.Fatalf("loaded %d entries, want %d", lib.Len(), built.Library().Len())
	}
	if _, _, err := core.NewExactEngineFromLibrary(lp, lib); err != nil {
		t.Fatal(err)
	}
}

// TestSaveRejectsMismatch pins Save's own validation.
func TestSaveRejectsMismatch(t *testing.T) {
	ds := testWorkload(t)
	p := testParams(512, 0, 3)
	built := buildEngine(t, p, ds.Library)
	var buf bytes.Buffer
	if err := Save(&buf, p, nil); err == nil {
		t.Fatal("Save accepted a nil library")
	}
	wrong := p
	wrong.Accel.D = 1024
	if err := Save(&buf, wrong, built.Library()); err == nil {
		t.Fatal("Save accepted params whose D disagrees with the library")
	}
	// A hand-assembled library that never ran SortByMass has no
	// permutation; Save must refuse rather than write a file Load
	// would reject.
	unsorted := &core.Library{
		Entries: append([]core.LibraryEntry(nil), built.Library().Entries...),
		HVs:     append([]hdc.BinaryHV(nil), built.Library().HVs...),
	}
	if err := Save(&buf, p, unsorted); err == nil || !strings.Contains(err.Error(), "source positions") {
		t.Fatalf("Save of a never-sorted library: got %v, want source-position refusal", err)
	}
}
