package libindex

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestVerifyPartitionsRejectsBodyCorruption pins the two integrity
// layers of the partitioned verify pass against *body* damage — bit
// flips in the bulk word section that every structural check in
// OpenManifest (magic, sizes, params, fences) sails past:
//
//   - a flipped word bit breaks the partition's own CRC trailer, so
//     Index.Verify inside VerifyPartitions rejects it, naming the
//     partition;
//   - a flipped word bit with the trailer recomputed to match is an
//     internally consistent file from "a different build" — only the
//     manifest's recorded CRC-32C can catch the swap, and the error
//     must say so.
func TestVerifyPartitionsRejectsBodyCorruption(t *testing.T) {
	if !mmapSupported {
		t.Skip("body corruption reaches VerifyPartitions only on mmap platforms; the copying loader checksums at open")
	}
	ds := testWorkload(t)
	p := testParams(512, 0, 3)
	built := buildEngine(t, p, ds.Library)
	dir := t.TempDir()
	manifest := filepath.Join(dir, "lib.manifest")
	if err := SavePartitioned(manifest, p, built.Library(), 2); err != nil {
		t.Fatal(err)
	}

	// cloneLibrary copies the manifest and its partitions into a fresh
	// directory so each subtest corrupts its own set.
	cloneLibrary := func(t *testing.T) string {
		t.Helper()
		dst := t.TempDir()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			src, err := os.Open(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			out, err := os.Create(filepath.Join(dst, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := io.Copy(out, src); err != nil {
				t.Fatal(err)
			}
			if err := src.Close(); err != nil {
				t.Fatal(err)
			}
			if err := out.Close(); err != nil {
				t.Fatal(err)
			}
		}
		return filepath.Join(dst, filepath.Base(manifest))
	}

	// verify opens the manifest (which must succeed: body damage is
	// structurally invisible) and returns the VerifyPartitions error.
	verify := func(t *testing.T, m string) error {
		t.Helper()
		pi, err := OpenManifest(m)
		if err != nil {
			t.Fatalf("OpenManifest rejected a structurally valid library: %v", err)
		}
		defer pi.Close()
		return pi.VerifyPartitions()
	}

	t.Run("pristine", func(t *testing.T) {
		if err := verify(t, cloneLibrary(t)); err != nil {
			t.Fatalf("VerifyPartitions on a pristine library: %v", err)
		}
	})

	t.Run("flipped word bit", func(t *testing.T) {
		m := cloneLibrary(t)
		part := PartitionFileName(m, 1)
		img, err := os.ReadFile(part)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one bit in the packed words, well clear of the metadata
		// sections at the front and the 4-byte CRC trailer at the back.
		img[len(img)-64] ^= 0x10
		if err := os.WriteFile(part, img, 0o644); err != nil {
			t.Fatal(err)
		}
		err = verify(t, m)
		if err == nil {
			t.Fatal("VerifyPartitions accepted a partition with a flipped word bit")
		}
		if !strings.Contains(err.Error(), "partition 1") || !strings.Contains(err.Error(), "corrupted") {
			t.Fatalf("error %q does not name partition 1 as corrupted", err)
		}
	})

	t.Run("swapped partition with consistent trailer", func(t *testing.T) {
		m := cloneLibrary(t)
		part := PartitionFileName(m, 0)
		img, err := os.ReadFile(part)
		if err != nil {
			t.Fatal(err)
		}
		// Alter a word and recompute the file's own CRC trailer: the
		// partition is now internally consistent but not the file the
		// manifest recorded — the replaced-file case.
		img[len(img)-32] ^= 0x04
		binary.LittleEndian.PutUint32(img[len(img)-4:], crc32.Checksum(img[:len(img)-4], castagnoli))
		if err := os.WriteFile(part, img, 0o644); err != nil {
			t.Fatal(err)
		}
		err = verify(t, m)
		if err == nil {
			t.Fatal("VerifyPartitions accepted a swapped partition with a self-consistent trailer")
		}
		if !strings.Contains(err.Error(), "partition 0") || !strings.Contains(err.Error(), "disagrees with manifest CRC") {
			t.Fatalf("error %q does not attribute the manifest CRC disagreement to partition 0", err)
		}
	})
}
