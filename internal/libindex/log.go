package libindex

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/hdc"
)

// The manifest is a generation log: one JSON record per line, each
// carrying its own CRC-32C, appended strictly in generation order.
// Record types:
//
//	base    — generation 1, written by SavePartitioned: library
//	          identity (d, params, bit-layout permutation, skipped
//	          count) plus the base-tier partition table, which tiles
//	          the mass-sorted library with non-overlapping fences.
//	delta   — a small batch of newly encoded references published as
//	          one or more mass-contiguous delta partitions whose
//	          fences MAY overlap the base tier (and each other).
//	retract — tombstones: the listed source ids are hidden in every
//	          generation older than the record's.
//	compact — the compactor's atomic publish: drops a set of
//	          partition files, adds their merged replacements to the
//	          base tier, and clears the tombstones it consumed.
//
// A reader folds the records into a ManifestState. Publishing any
// change is appending one fsynced line, so a crash can only lose the
// tail: an unterminated final line that fails to validate is ignored
// (the last good generation keeps serving — never a partially
// applied one), while a newline-terminated record that fails to
// parse or checksum is corruption and rejected descriptively.
const (
	recordBase    = "base"
	recordDelta   = "delta"
	recordRetract = "retract"
	recordCompact = "compact"
)

// LogRecord is one line of the manifest generation log. Fields are
// populated per record type (see the package comment above); CRC32C
// is the CRC-32C (Castagnoli) of the record's canonical JSON encoding
// with CRC32C itself set to zero.
type LogRecord struct {
	Type string `json:"type"`
	// Format and Version identify the log; base record only.
	Format  string `json:"format,omitempty"`
	Version int    `json:"version,omitempty"`
	// Generation is the record's generation number: 1 for the base
	// record, exactly previous+1 for every later record.
	Generation uint64 `json:"generation"`
	// D is the hypervector dimension (base record only).
	D int `json:"d,omitempty"`
	// Skipped counts spectra rejected by preprocessing while building
	// this record's partitions (base and delta records).
	Skipped int `json:"skipped,omitempty"`
	// Params is the JSON-encoded core.Params of the build (base only);
	// every delta batch must be encoded with exactly these parameters.
	Params json.RawMessage `json:"params,omitempty"`
	// DimPerm is the shared bit-layout permutation (base only).
	DimPerm []int `json:"dim_perm,omitempty"`
	// Partitions lists partition files introduced by this record (base,
	// delta and compact records). StartRow is the row offset within
	// this record — with the generation number it totally orders every
	// row the record introduced.
	Partitions []PartitionInfo `json:"partitions,omitempty"`
	// Ids lists the retracted source ids (retract records).
	Ids []string `json:"ids,omitempty"`
	// Drop lists the partition files this compaction retires and Clear
	// the tombstoned ids it consumed (compact records).
	Drop  []string `json:"drop,omitempty"`
	Clear []string `json:"clear,omitempty"`

	CRC32C uint32 `json:"crc32c"`
}

// recordCRC computes the record's checksum: CRC-32C over the
// canonical JSON encoding with the CRC32C field zeroed.
func recordCRC(rec LogRecord) (uint32, error) {
	rec.CRC32C = 0
	raw, err := json.Marshal(&rec)
	if err != nil {
		return 0, fmt.Errorf("libindex: encoding log record: %w", err)
	}
	return crc32.Checksum(raw, castagnoli), nil
}

// marshalRecord seals a record (computes and sets its CRC) and
// returns its log line including the trailing newline.
func marshalRecord(rec LogRecord) ([]byte, error) {
	crc, err := recordCRC(rec)
	if err != nil {
		return nil, err
	}
	rec.CRC32C = crc
	raw, err := json.Marshal(&rec)
	if err != nil {
		return nil, fmt.Errorf("libindex: encoding log record: %w", err)
	}
	return append(raw, '\n'), nil
}

// PartitionState is one live partition in the folded manifest state:
// its on-disk description plus the generation coordinates the dedup
// merge orders rows by.
type PartitionState struct {
	PartitionInfo
	// Gen is the generation whose record introduced the partition's
	// rows; GenRow is the partition's row offset within that record.
	Gen    uint64
	GenRow int
	// Delta marks a delta-tier partition: its mass fences may overlap
	// the base tiling, so a reader must range-search it per query
	// instead of clipping the base tier's contiguous candidate range.
	Delta bool
}

// ManifestState is the fold of a manifest generation log: the library
// identity, the live base-tier and delta-tier partitions, and the
// outstanding tombstones.
type ManifestState struct {
	// Generation is the newest applied generation number.
	Generation uint64
	// D is the hypervector dimension shared by every partition.
	D int
	// Skipped is the cumulative preprocessing-skip count (base build
	// plus every delta batch).
	Skipped int
	// Params is the JSON-encoded core.Params from the base record.
	Params json.RawMessage
	// DimPerm is the shared bit-layout permutation (empty = natural).
	DimPerm []int
	// Base holds the base-tier partitions in ascending mass order
	// (non-overlapping fences up to boundary ties); Deltas holds the
	// delta-tier partitions in publish order.
	Base   []PartitionState
	Deltas []PartitionState
	// Tombstones maps a retracted source id to the generation of its
	// retract record: instances of the id in strictly older
	// generations are hidden.
	Tombstones map[string]uint64

	// goodLen is the byte length of the validated record prefix;
	// tornTail reports that a trailing unterminated fragment after it
	// was discarded (crash-interrupted append); unterminated reports
	// that the last accepted record lacks its trailing newline.
	goodLen      int64
	tornTail     bool
	unterminated bool
	// everFiles records every partition file any record ever
	// referenced, including dropped ones — the sweeper's notion of
	// "not an orphan".
	everFiles map[string]bool
}

// TornTail reports whether the log ended in an unterminated,
// non-validating fragment that was discarded — the signature of a
// crash between a partition-file write and the record append, or
// mid-append. The state reflects the last good generation.
func (st *ManifestState) TornTail() bool { return st.tornTail }

// TotalRefs sums the live partitions' row counts — physical rows,
// including ones hidden by newer generations or tombstones.
func (st *ManifestState) TotalRefs() int {
	n := 0
	for _, p := range st.Base {
		n += p.Refs
	}
	for _, p := range st.Deltas {
		n += p.Refs
	}
	return n
}

// Partitions returns the live partitions in engine order: the base
// tier in ascending mass order, then the delta tier in publish order.
func (st *ManifestState) Partitions() []PartitionState {
	out := make([]PartitionState, 0, len(st.Base)+len(st.Deltas))
	out = append(out, st.Base...)
	out = append(out, st.Deltas...)
	return out
}

// LoadManifestLog reads and folds a manifest generation log without
// opening any partition file.
func LoadManifestLog(path string) (*ManifestState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st, err := ParseManifestLog(data)
	if err != nil {
		return nil, fmt.Errorf("libindex: manifest %s: %w", path, err)
	}
	return st, nil
}

// ParseManifestLog folds manifest-log bytes into a ManifestState. Any
// newline-terminated record that fails to parse, checksum or apply is
// rejected descriptively; a final unterminated line is accepted when
// it validates completely and silently discarded otherwise (torn
// append — the state is the last good generation, never a partially
// applied one).
func ParseManifestLog(data []byte) (*ManifestState, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("empty manifest")
	}
	st := &ManifestState{Tombstones: map[string]uint64{}, everFiles: map[string]bool{}}
	off := int64(0)
	first := true
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		line := data
		terminated := nl >= 0
		advance := int64(len(data))
		if terminated {
			line = data[:nl]
			advance = int64(nl) + 1
		}
		rec, err := decodeRecord(line)
		if err == nil {
			err = st.apply(rec, first)
		}
		if err != nil {
			if first && terminated {
				// Not a parsable log line at all? Distinguish a legacy
				// (version <= 3) whole-document manifest so the operator
				// learns to rebuild rather than chasing "corrupt log".
				if lerr := legacyManifestErr(data[:]); lerr != nil {
					return nil, lerr
				}
			}
			if !terminated {
				// Crash-truncated final append: ignore the fragment and
				// serve the validated prefix.
				st.tornTail = true
				break
			}
			return nil, fmt.Errorf("record %d (generation %d expected): %w", st.recordCount(), st.Generation+1, err)
		}
		off += advance
		st.goodLen = off
		st.unterminated = !terminated
		first = false
		data = data[advance:]
	}
	if st.Generation == 0 {
		return nil, fmt.Errorf("no valid base record (truncated before the first generation?)")
	}
	return st, nil
}

// recordCount is the number of records applied so far (for error
// positions): generation numbers are contiguous from 1.
func (st *ManifestState) recordCount() uint64 { return st.Generation }

// decodeRecord parses one log line and verifies its checksum.
func decodeRecord(line []byte) (LogRecord, error) {
	var rec LogRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return rec, fmt.Errorf("decoding log record: %v", err)
	}
	want, err := recordCRC(rec)
	if err != nil {
		return rec, err
	}
	if rec.CRC32C != want {
		return rec, fmt.Errorf("log record checksum %08x, computed %08x (corrupt or hand-edited line)", rec.CRC32C, want)
	}
	return rec, nil
}

// legacyManifestErr reports a descriptive rebuild error when data is
// a pre-v4 whole-document JSON manifest, nil otherwise.
func legacyManifestErr(data []byte) error {
	var doc struct {
		Format  string `json:"format"`
		Version int    `json:"version"`
	}
	if json.Unmarshal(data, &doc) != nil || doc.Format != ManifestFormat {
		return nil
	}
	if doc.Version < ManifestVersion {
		return fmt.Errorf("manifest version %d predates the generation log (this build reads version %d): rebuild the partitioned index with omsbuild", doc.Version, ManifestVersion)
	}
	if doc.Version > ManifestVersion {
		return fmt.Errorf("manifest version %d is newer than this build understands (version %d): upgrade the reader or rebuild the index", doc.Version, ManifestVersion)
	}
	// Current version: not a legacy document — surface the record error.
	return nil
}

// apply folds one validated record into the state.
func (st *ManifestState) apply(rec LogRecord, first bool) error {
	if first != (rec.Type == recordBase) {
		if first {
			return fmt.Errorf("log starts with a %q record, want %q", rec.Type, recordBase)
		}
		return fmt.Errorf("second %q record (a log has exactly one)", recordBase)
	}
	if want := st.Generation + 1; rec.Generation != want {
		if rec.Generation <= st.Generation {
			return fmt.Errorf("duplicate or regressing generation %d after generation %d", rec.Generation, st.Generation)
		}
		return fmt.Errorf("generation %d skips ahead of %d (missing record)", rec.Generation, want)
	}
	switch rec.Type {
	case recordBase:
		return st.applyBase(rec)
	case recordDelta:
		return st.applyDelta(rec)
	case recordRetract:
		return st.applyRetract(rec)
	case recordCompact:
		return st.applyCompact(rec)
	default:
		return fmt.Errorf("unknown record type %q (log written by a newer build?)", rec.Type)
	}
}

func (st *ManifestState) applyBase(rec LogRecord) error {
	if rec.Format != ManifestFormat {
		return fmt.Errorf("not a library manifest (format %q)", rec.Format)
	}
	if rec.Version != ManifestVersion {
		if rec.Version < ManifestVersion {
			return fmt.Errorf("manifest version %d predates the generation log (this build reads version %d): rebuild the partitioned index with omsbuild", rec.Version, ManifestVersion)
		}
		return fmt.Errorf("manifest version %d is newer than this build understands (version %d): upgrade the reader or rebuild the index", rec.Version, ManifestVersion)
	}
	if rec.D <= 0 {
		return fmt.Errorf("base record dimension d=%d", rec.D)
	}
	if len(rec.Params) == 0 {
		return fmt.Errorf("base record carries no params")
	}
	if len(rec.DimPerm) != 0 {
		if err := hdc.ValidatePermutation(rec.DimPerm, rec.D); err != nil {
			return fmt.Errorf("bit-layout permutation: %w", err)
		}
	}
	parts, err := st.takePartitions(rec, false)
	if err != nil {
		return err
	}
	st.Generation = rec.Generation
	st.D = rec.D
	st.Skipped = rec.Skipped
	st.Params = rec.Params
	st.DimPerm = rec.DimPerm
	st.Base = parts
	return st.checkBaseOrder()
}

func (st *ManifestState) applyDelta(rec LogRecord) error {
	parts, err := st.takePartitions(rec, true)
	if err != nil {
		return err
	}
	st.Generation = rec.Generation
	st.Skipped += rec.Skipped
	st.Deltas = append(st.Deltas, parts...)
	return nil
}

func (st *ManifestState) applyRetract(rec LogRecord) error {
	if len(rec.Ids) == 0 {
		return fmt.Errorf("retract record lists no ids")
	}
	seen := make(map[string]bool, len(rec.Ids))
	for _, id := range rec.Ids {
		if id == "" {
			return fmt.Errorf("retract record lists an empty id")
		}
		if seen[id] {
			return fmt.Errorf("retract record lists id %q twice", id)
		}
		seen[id] = true
	}
	st.Generation = rec.Generation
	for _, id := range rec.Ids {
		// Re-retract after a re-add: the newer generation wins, exactly
		// as with additions.
		st.Tombstones[id] = rec.Generation
	}
	return nil
}

func (st *ManifestState) applyCompact(rec LogRecord) error {
	if len(rec.Drop) == 0 {
		return fmt.Errorf("compact record drops no partitions")
	}
	live := make(map[string]bool, len(st.Base)+len(st.Deltas))
	for _, p := range st.Base {
		live[p.File] = true
	}
	for _, p := range st.Deltas {
		live[p.File] = true
	}
	dropped := make(map[string]bool, len(rec.Drop))
	for _, f := range rec.Drop {
		if !live[f] {
			return fmt.Errorf("compact record drops %q, which is not a live partition file", f)
		}
		if dropped[f] {
			return fmt.Errorf("compact record drops %q twice", f)
		}
		dropped[f] = true
	}
	for _, id := range rec.Clear {
		if _, ok := st.Tombstones[id]; !ok {
			return fmt.Errorf("compact record clears tombstone %q, which is not outstanding", id)
		}
	}
	var parts []PartitionState
	if len(rec.Partitions) > 0 {
		var err error
		if parts, err = st.takePartitions(rec, false); err != nil {
			return err
		}
	}
	keep := func(in []PartitionState) []PartitionState {
		out := in[:0]
		for _, p := range in {
			if !dropped[p.File] {
				out = append(out, p)
			}
		}
		return out
	}
	st.Generation = rec.Generation
	st.Base = append(keep(st.Base), parts...)
	sort.SliceStable(st.Base, func(a, b int) bool {
		if st.Base[a].MinMass != st.Base[b].MinMass {
			return st.Base[a].MinMass < st.Base[b].MinMass
		}
		return st.Base[a].MaxMass < st.Base[b].MaxMass
	})
	st.Deltas = keep(st.Deltas)
	for _, id := range rec.Clear {
		delete(st.Tombstones, id)
	}
	if len(st.Base)+len(st.Deltas) == 0 {
		return fmt.Errorf("compact record leaves no live partitions")
	}
	return st.checkBaseOrder()
}

// takePartitions validates a record's partition list and tags it with
// the record's generation coordinates. Deltas may be empty-fenced
// relative to each other; within one record StartRow must tile the
// record's rows so (Generation, GenRow) orders them totally.
func (st *ManifestState) takePartitions(rec LogRecord, delta bool) ([]PartitionState, error) {
	if len(rec.Partitions) == 0 {
		return nil, fmt.Errorf("%s record lists no partitions", rec.Type)
	}
	out := make([]PartitionState, 0, len(rec.Partitions))
	row := 0
	for i, info := range rec.Partitions {
		if info.File == "" || info.File != filepath.Base(info.File) {
			return nil, fmt.Errorf("partition %d file %q is not a bare file name", i, info.File)
		}
		if st.everFiles[info.File] {
			return nil, fmt.Errorf("partition %d reuses file name %q from an earlier generation", i, info.File)
		}
		if info.Refs <= 0 {
			return nil, fmt.Errorf("partition %d has %d refs", i, info.Refs)
		}
		if info.StartRow != row {
			return nil, fmt.Errorf("partition %d starts at record row %d, want %d (a record's partitions must tile its rows)", i, info.StartRow, row)
		}
		if info.MinMass > info.MaxMass {
			return nil, fmt.Errorf("partition %d has inverted mass fences [%g, %g]", i, info.MinMass, info.MaxMass)
		}
		if i > 0 && info.MinMass < rec.Partitions[i-1].MaxMass {
			return nil, fmt.Errorf("partition %d fence %g below partition %d fence %g (a record's partitions must ascend in mass)",
				i, info.MinMass, i-1, rec.Partitions[i-1].MaxMass)
		}
		st.everFiles[info.File] = true
		out = append(out, PartitionState{PartitionInfo: info, Gen: rec.Generation, GenRow: info.StartRow, Delta: delta})
		row += info.Refs
	}
	return out, nil
}

// checkBaseOrder verifies the base tier stays a tiling: ascending,
// non-overlapping mass fences (boundary ties allowed).
func (st *ManifestState) checkBaseOrder() error {
	for i := 1; i < len(st.Base); i++ {
		if st.Base[i].MinMass < st.Base[i-1].MaxMass {
			return fmt.Errorf("base partition %s fence %g overlaps %s fence %g after compaction",
				st.Base[i].File, st.Base[i].MinMass, st.Base[i-1].File, st.Base[i-1].MaxMass)
		}
	}
	return nil
}

// appendLogRecord seals rec and appends it to the log at path with
// the durability the publish contract requires: the record line (and
// a repairing newline, when the previous append lost its terminator)
// is written at the validated prefix length — truncating any torn
// fragment a crashed writer left — then the file and its directory
// are fsynced before the append is reported published.
func appendLogRecord(path string, st *ManifestState, rec LogRecord) error {
	line, err := marshalRecord(rec)
	if err != nil {
		return err
	}
	if st.unterminated {
		line = append([]byte{'\n'}, line...)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if info, err := f.Stat(); err != nil {
		return err
	} else if info.Size() < st.goodLen {
		return fmt.Errorf("libindex: manifest %s shrank to %d bytes below the loaded state's %d (concurrent rewrite?)", path, info.Size(), st.goodLen)
	}
	if err := f.Truncate(st.goodLen); err != nil {
		return fmt.Errorf("libindex: truncating torn manifest tail: %w", err)
	}
	if _, err := f.WriteAt(line, st.goodLen); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	st.goodLen += int64(len(line))
	st.unterminated = false
	st.tornTail = false
	return nil
}

// syncDir best-effort fsyncs a directory so a just-written file's
// directory entry is durable (no-op where unsupported).
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// GenPartitionFileName returns the partition file name for generation
// gen's i-th partition: "<base>.gNNNNNN.partNNN". Base-tier files from
// the initial build keep the legacy PartitionFileName shape; every
// later generation (deltas and compactions) uses this one, so file
// names never collide across generations.
func GenPartitionFileName(manifestPath string, gen uint64, i int) string {
	return fmt.Sprintf("%s.g%06d.part%03d", manifestPath, gen, i)
}
