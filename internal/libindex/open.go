package libindex

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"unsafe"

	"repro/internal/core"
	"repro/internal/hdc"
)

// Index is an opened library index: the decoded library and build
// parameters plus the contiguous packed word block every hypervector
// is a view over. When the index is memory-mapped (the normal case on
// unix), the block aliases the mapping directly — opening costs one
// metadata parse, not a copy of the bulk words, and the word pages
// fault in lazily as searches touch them. On platforms without mmap,
// or when mapping fails, OpenFile transparently falls back to the
// copying loader and the block lives on the heap.
type Index struct {
	// Params are the engine parameters the library was built with
	// (ShardSize from the header, everything else from the params JSON).
	Params core.Params
	// Lib is the decoded library; its HVs are views over Words.
	Lib *core.Library

	words  []uint64
	mapped []byte // non-nil iff mmap-backed
	closed bool
	path   string
}

// Words returns the contiguous packed word block (n × WordsPerHV(d)),
// row-major in mass order — the input of the packed searcher
// constructors. The block aliases the mapping when Mapped reports
// true: no view outlives the index's Close. Words panics after Close —
// deterministically, on every platform, so a lifetime bug surfaces as
// a descriptive panic at the call site instead of a SIGSEGV inside a
// kernel loop on mmap platforms and silent success elsewhere.
func (ix *Index) Words() []uint64 {
	if ix.closed {
		panic("libindex: Words on closed index " + ix.path + " (no view outlives its generation's Close)")
	}
	return ix.words
}

// Mapped reports whether the index is memory-mapped (true) or was
// copied to the heap by the fallback loader (false).
func (ix *Index) Mapped() bool { return ix.mapped != nil }

// Path returns the file the index was opened from.
func (ix *Index) Path() string { return ix.path }

// Close releases the mapping and poisons the index: the words view is
// zeroed and Words panics afterwards, for a copied index exactly as
// for a mapped one, so misuse does not depend on which loader ran.
// Every view already handed out — Lib.HVs, Words results, and any
// searcher or engine packed over them — is invalid after Close; close
// only after the engine built over this index is unreachable. Close is
// idempotent: the second and later calls return nil without touching
// the mapping again.
func (ix *Index) Close() error {
	if ix.closed {
		return nil
	}
	ix.closed = true
	ix.words = nil
	m := ix.mapped
	ix.mapped = nil
	if m == nil {
		return nil
	}
	return munmapFile(m)
}

// Verify checksums the full index image against its CRC-32C trailer.
// OpenFile validates the metadata sections structurally but — unlike
// Load — does not touch the bulk word pages, so a mapped index of
// untrusted provenance can be verified explicitly here (at the cost of
// faulting in every page). A copied index already passed the loader's
// checksum; Verify reports nil without re-reading it.
func (ix *Index) Verify() error {
	if ix.mapped == nil {
		return nil
	}
	data := ix.mapped
	got := crc32.Checksum(data[:len(data)-4], castagnoli)
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got != want {
		return fmt.Errorf("libindex: checksum mismatch (file %08x, computed %08x): index is corrupted", want, got)
	}
	return nil
}

// OpenFile opens a library index with the bulk word section
// memory-mapped: the metadata sections (params, masses, permutation,
// entry strings) are decoded and validated exactly as Load does, but
// the packed words become a zero-copy []uint64 view over the mapping,
// so opening is metadata-bound — independent of library size — and the
// resident cost of a partition is only the pages its searches touch.
// The word payload itself is not checksummed here (that would fault in
// every page, defeating the point); use Load, or Index.Verify, when
// the file's integrity is in question. On platforms without mmap, or
// when mapping fails, OpenFile falls back to the copying loader —
// callers observe the same Index either way.
func OpenFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !mmapSupported {
		return openCopied(f, path)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, err := mmapFile(f, st.Size())
	if err != nil {
		return openCopied(f, path)
	}
	p, lib, words, err := parseIndex(data)
	if err != nil {
		munmapFile(data)
		return nil, err
	}
	return &Index{Params: p, Lib: lib, words: words, mapped: data, path: path}, nil
}

// openCopied is OpenFile's fallback: the copying loader, wrapped in
// the same Index shape (heap-backed block, nil mapping).
func openCopied(f *os.File, path string) (*Index, error) {
	p, lib, block, err := load(f)
	if err != nil {
		return nil, err
	}
	return &Index{Params: p, Lib: lib, words: block, path: path}, nil
}

// byteCursor walks an in-memory index image with bounds-checked reads,
// capturing the first error so call sites stay linear (the in-memory
// mirror of sectionReader; every length is validated against the bytes
// actually present before any slice is taken, so a crafted header can
// neither panic nor drive an oversized allocation).
type byteCursor struct {
	data []byte
	off  int
	err  error
}

// take consumes n bytes, returning nil (with the error recorded) when
// fewer remain.
func (c *byteCursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || n > len(c.data)-c.off {
		c.err = fmt.Errorf("truncated index: %d bytes needed at offset %d, %d remain", n, c.off, len(c.data)-c.off)
		return nil
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b
}

func (c *byteCursor) u8() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *byteCursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (c *byteCursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *byteCursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// parseIndex decodes an index image in place: metadata is copied out
// (entry strings must survive the mapping), the packed words become a
// view over data when the section is 8-byte aligned (always, for a
// page-aligned mapping of a version-2 file) and are copied otherwise.
// The CRC trailer is located but not verified — see OpenFile.
func parseIndex(data []byte) (core.Params, *core.Library, []uint64, error) {
	fail := func(format string, args ...any) (core.Params, *core.Library, []uint64, error) {
		return core.Params{}, nil, nil, fmt.Errorf("libindex: "+format, args...)
	}
	c := &byteCursor{data: data}
	var hdr [6]byte
	copy(hdr[:], c.take(6))
	if c.err != nil {
		return fail("%v", c.err)
	}
	if hdr != magic {
		return fail("not an OMS library index (bad magic %q)", hdr[:])
	}
	if version := c.u16(); c.err == nil && version != Version {
		return core.Params{}, nil, nil, versionErr(version)
	}
	d := int(c.u32())
	shardSize := int(c.u32())
	n64 := c.u64()
	skipped := c.u64()
	paramsLen := int(c.u32())
	if c.err != nil {
		return fail("%v", c.err)
	}
	if d <= 0 || d > maxDim {
		return fail("implausible hypervector dimension %d in header", d)
	}
	if n64 == 0 || n64 > maxEntries {
		return fail("implausible entry count %d in header", n64)
	}
	if paramsLen <= 0 || paramsLen > maxParamsLen {
		return fail("implausible params length %d in header", paramsLen)
	}
	n := int(n64)
	words := hdc.WordsPerHV(d)
	if int64(n)*int64(words) > maxTotalWords {
		return fail("implausible index size: %d entries × %d words", n, words)
	}
	// The whole image is in hand, so the claimed entry count can be
	// checked against the bytes actually present before any allocation:
	// every entry costs at least 8 (mass) + 8 (srcPos) + 9 (metadata)
	// bytes plus its words, and the params, perm-length field and CRC
	// trailer are fixed (the perm section itself is re-checked once its
	// length field is read).
	minSize := int64(c.off) + int64(paramsLen) + 4 + int64(n)*(8+8+9) + int64(n)*int64(words)*8 + 4
	if minSize > int64(len(data)) {
		return fail("truncated index: %d entries need at least %d bytes, file has %d", n, minSize, len(data))
	}

	paramsJSON := c.take(paramsLen)
	permLen := int(c.u32())
	if c.err == nil && permLen != 0 && permLen != d {
		return fail("bit-layout permutation has %d entries, want 0 (natural layout) or %d", permLen, d)
	}
	var perm []int
	if permLen > 0 {
		if int64(c.off)+int64(permLen)*4 > int64(len(data)) {
			return fail("truncated index: %d-entry bit-layout permutation needs %d bytes at offset %d, file has %d", permLen, permLen*4, c.off, len(data))
		}
		perm = make([]int, permLen)
		for i := range perm {
			perm[i] = int(c.u32())
		}
	}
	masses := make([]float64, n)
	for i := range masses {
		masses[i] = math.Float64frombits(c.u64())
	}
	srcPos := make([]int, n)
	for i := range srcPos {
		p64 := c.u64()
		if c.err == nil && p64 >= n64 {
			return fail("source position %d out of range [0,%d)", p64, n)
		}
		srcPos[i] = int(p64)
	}
	entries := make([]core.LibraryEntry, n)
	for i := range entries {
		flags := c.u8()
		id := c.str()
		pep := c.str()
		if c.err != nil {
			return fail("%v", c.err)
		}
		entries[i] = core.LibraryEntry{ID: id, Peptide: pep, IsDecoy: flags&1 != 0, Mass: masses[i]}
	}
	if c.err != nil {
		return fail("%v", c.err)
	}
	pad := c.take(int(-int64(c.off) & 7))
	for _, b := range pad {
		if b != 0 {
			return fail("nonzero alignment padding")
		}
	}
	wordsOff := c.off
	if c.take(n*words*8) == nil || c.take(4) == nil {
		return fail("%v", c.err)
	}
	if c.off != len(data) {
		return fail("trailing data after checksum")
	}

	var p core.Params
	if err := json.Unmarshal(paramsJSON, &p); err != nil {
		return fail("decoding params: %v", err)
	}
	if p.Accel.D != d {
		return fail("params dimension D=%d disagrees with header dimension %d", p.Accel.D, d)
	}
	p.ShardSize = shardSize // header is authoritative for the shard hint
	for i, m := range masses {
		if math.IsNaN(m) || math.IsInf(m, 0) {
			return fail("non-finite precursor mass at entry %d", i)
		}
		if i > 0 && m < masses[i-1] {
			return fail("entries not in ascending mass order at index %d", i)
		}
	}

	var block []uint64
	if uintptr(unsafe.Pointer(&data[wordsOff]))%8 == 0 {
		block = unsafe.Slice((*uint64)(unsafe.Pointer(&data[wordsOff])), n*words)
	} else {
		// A non-page-aligned backing buffer (tests, fuzzing) cannot be
		// viewed as []uint64; copy the words out instead.
		block = make([]uint64, n*words)
		for i := range block {
			block[i] = binary.LittleEndian.Uint64(data[wordsOff+i*8:])
		}
	}
	hvs := make([]hdc.BinaryHV, n)
	for i := range hvs {
		hvs[i] = hdc.BinaryHV{D: d, Words: block[i*words : (i+1)*words : (i+1)*words]}
	}
	lib, err := core.RestoreLibrary(entries, hvs, srcPos, int(skipped))
	if err != nil {
		return core.Params{}, nil, nil, err
	}
	if err := lib.SetDimPerm(perm); err != nil {
		return fail("%v", err)
	}
	return p, lib, block, nil
}

// str reads a length-prefixed string, copying it off the backing
// buffer (entry strings must survive an unmapped index).
func (c *byteCursor) str() string {
	ln := int(c.u32())
	if c.err != nil {
		return ""
	}
	if ln > maxStringLen {
		c.err = fmt.Errorf("string length %d exceeds limit %d", ln, maxStringLen)
		return ""
	}
	return string(c.take(ln))
}
