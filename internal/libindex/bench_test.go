package libindex

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/hdc"
	"repro/internal/msdata"
)

// BenchmarkIndexLoad compares engine startup from a persisted index
// against re-encoding the same library from spectra — the economics
// that justify the index format. Acceptance: load ≥ 10x faster than
// encode (in practice it is orders of magnitude faster: one streamed
// pass over packed words versus the full preprocessing + ID-Level
// encoding pipeline per spectrum).
func BenchmarkIndexLoad(b *testing.B) {
	cfg := msdata.IPRG2012(0.005) // 5k targets + 5k decoys
	ds, err := msdata.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := testParams(2048, 0, 3)
	engine, _, err := core.BuildExact(p, ds.Library)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, p, engine.Library()); err != nil {
		b.Fatal(err)
	}
	img := buf.Bytes()
	b.Run("load", func(b *testing.B) {
		b.SetBytes(int64(len(img)))
		for i := 0; i < b.N; i++ {
			lp, lib, err := Load(bytes.NewReader(img))
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := core.NewExactEngineFromLibrary(lp, lib); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(engine.Library().Len()), "refs/op")
	})
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.BuildExact(p, ds.Library); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(engine.Library().Len()), "refs/op")
	})
}

// BenchmarkAppendPublish measures the durable publish path for one
// incremental update: fold the generation log, write a 1k-row delta
// partition (tmp + fsync + rename + dirsync), and append its sealed
// record — the latency an operator pays per omsbuild -append against
// a 20k-row base. Each iteration publishes a real generation, so the
// log it folds grows as the benchmark runs, exactly as a long-lived
// deployment's would between compactions.
func BenchmarkAppendPublish(b *testing.B) {
	const dn = 1000
	p, lib := syntheticLibrary(b, 20_000, 2048)
	manifest := b.TempDir() + "/bench.manifest"
	if err := SavePartitioned(manifest, p, lib, 4); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	entries := make([]core.LibraryEntry, dn)
	hvs := make([]hdc.BinaryHV, dn)
	for i := range entries {
		entries[i] = core.LibraryEntry{
			ID:      fmt.Sprintf("delta-%d", i),
			Peptide: fmt.Sprintf("DPEP%d", i),
			Mass:    600 + float64(i)*0.11,
		}
		hvs[i] = hdc.RandomBinaryHV(2048, rng)
	}
	dlib, err := core.RestoreLibrary(entries, hvs, rng.Perm(dn), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := LoadManifestLog(manifest)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := AppendDelta(manifest, st, dlib, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(dn, "refs/op")
}

// BenchmarkIndexOpen compares the mmap-backed OpenFile against the
// copying LoadFile at 100k references — the economics of the
// partitioned out-of-core design. LoadFile checksums and copies the
// full ~100 MiB word payload; OpenFile parses only the metadata
// sections and aliases the words, so open cost is independent of
// library size. Acceptance: mmap open ≥ 5x faster than copying load.
func BenchmarkIndexOpen(b *testing.B) {
	p, lib := syntheticLibrary(b, 100_000, 8192)
	dir := b.TempDir()
	path := dir + "/bench.omsidx"
	if err := SaveFile(path, p, lib); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("mmap-open", func(b *testing.B) {
		b.SetBytes(st.Size())
		for i := 0; i < b.N; i++ {
			ix, err := OpenFile(path)
			if err != nil {
				b.Fatal(err)
			}
			if !ix.Mapped() {
				b.Fatal("index not mapped")
			}
			if err := ix.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(lib.Len()), "refs/op")
	})
	b.Run("copy-load", func(b *testing.B) {
		b.SetBytes(st.Size())
		for i := 0; i < b.N; i++ {
			if _, _, err := LoadFile(path); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(lib.Len()), "refs/op")
	})
}
