package libindex

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/msdata"
)

// BenchmarkIndexLoad compares engine startup from a persisted index
// against re-encoding the same library from spectra — the economics
// that justify the index format. Acceptance: load ≥ 10x faster than
// encode (in practice it is orders of magnitude faster: one streamed
// pass over packed words versus the full preprocessing + ID-Level
// encoding pipeline per spectrum).
func BenchmarkIndexLoad(b *testing.B) {
	cfg := msdata.IPRG2012(0.005) // 5k targets + 5k decoys
	ds, err := msdata.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := testParams(2048, 0, 3)
	engine, _, err := core.BuildExact(p, ds.Library)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, p, engine.Library()); err != nil {
		b.Fatal(err)
	}
	img := buf.Bytes()
	b.Run("load", func(b *testing.B) {
		b.SetBytes(int64(len(img)))
		for i := 0; i < b.N; i++ {
			lp, lib, err := Load(bytes.NewReader(img))
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := core.NewExactEngineFromLibrary(lp, lib); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(engine.Library().Len()), "refs/op")
	})
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.BuildExact(p, ds.Library); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(engine.Library().Len()), "refs/op")
	})
}
