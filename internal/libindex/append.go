package libindex

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/hdc"
	"repro/internal/spectrum"
)

// The writers in this file (and Compact in compact.go) assume a single
// writer at a time: each one loads the log's validated prefix, writes
// its partition files, then publishes by appending one fsynced record
// at the prefix end. Two concurrent writers would race on that offset.
// Readers are unaffected — they only ever see a prefix of the log.
//
// Crash-safety ordering: partition files are written, fsynced and
// renamed into place BEFORE the record referencing them is appended. A
// crash between the two leaves orphaned partition files and an
// unchanged (or torn-tailed) manifest — the last good generation keeps
// opening, and SweepOrphans reclaims the files.

// BuildDeltaLibrary encodes a batch of spectra for appending to an
// existing library: the batch is built with the library's stored
// params but under the NATURAL bit layout — re-deriving an entropy
// permutation from a small batch would disagree with the base
// layout — and then permuted under the library's shared dimension
// permutation, so its packed rows are directly comparable with every
// existing partition's.
func BuildDeltaLibrary(spectra []*spectrum.Spectrum, p core.Params, dimPerm []int) (*core.Library, error) {
	ids, levels, err := accel.NewEncoderComponents(p.Accel)
	if err != nil {
		return nil, err
	}
	enc, err := hdc.NewEncoder(ids, levels)
	if err != nil {
		return nil, err
	}
	p.BitLayout = core.BitLayoutNatural
	lib, err := core.BuildLibrary(spectra, p, enc)
	if err != nil {
		return nil, err
	}
	if len(dimPerm) > 0 {
		for i := range lib.HVs {
			lib.HVs[i] = hdc.PermuteBits(lib.HVs[i], dimPerm)
		}
		if err := lib.SetDimPerm(dimPerm); err != nil {
			return nil, err
		}
	}
	return lib, nil
}

// AppendDelta publishes a built delta batch as generation
// st.Generation+1: the batch is split into mass-contiguous delta
// partition files of at most maxPartRefs rows (0 = one partition),
// each written and fsynced, and then one delta record is appended to
// the manifest log. On success st is advanced to the new generation.
// The delta partitions' fences may overlap the base tier — no
// re-tiling happens here; that is the compactor's job.
func AppendDelta(manifestPath string, st *ManifestState, lib *core.Library, maxPartRefs int) (uint64, error) {
	if lib == nil || lib.Len() == 0 {
		return 0, fmt.Errorf("libindex: refusing to append an empty delta batch")
	}
	if d := lib.HVs[0].D; d != st.D {
		return 0, fmt.Errorf("libindex: delta batch has dimension D=%d, library has D=%d", d, st.D)
	}
	if !permsEqual(lib.DimPerm, st.DimPerm) {
		return 0, fmt.Errorf("libindex: delta batch is packed under a different bit-layout permutation than the library (build it with BuildDeltaLibrary)")
	}
	var p core.Params
	if err := json.Unmarshal(st.Params, &p); err != nil {
		return 0, fmt.Errorf("libindex: decoding manifest params: %w", err)
	}
	n := lib.Len()
	parts := 1
	if maxPartRefs > 0 {
		parts = (n + maxPartRefs - 1) / maxPartRefs
	}
	gen := st.Generation + 1
	srcPos := lib.SourcePositions()
	rec := LogRecord{Type: recordDelta, Generation: gen, Skipped: lib.Skipped}
	for i := 0; i < parts; i++ {
		lo, hi := i*n/parts, (i+1)*n/parts
		sub, err := core.RestoreLibrary(
			lib.Entries[lo:hi:hi],
			lib.HVs[lo:hi:hi],
			localizePositions(srcPos[lo:hi]),
			0,
		)
		if err != nil {
			return 0, fmt.Errorf("libindex: assembling delta partition %d: %w", i, err)
		}
		if err := sub.SetDimPerm(lib.DimPerm); err != nil {
			return 0, fmt.Errorf("libindex: assembling delta partition %d: %w", i, err)
		}
		path := GenPartitionFileName(manifestPath, gen, i)
		crc, size, err := savePartitionFile(path, p, sub)
		if err != nil {
			return 0, fmt.Errorf("libindex: writing delta partition %d: %w", i, err)
		}
		rec.Partitions = append(rec.Partitions, PartitionInfo{
			File:     filepath.Base(path),
			Refs:     hi - lo,
			StartRow: lo,
			MinMass:  lib.Entries[lo].Mass,
			MaxMass:  lib.Entries[hi-1].Mass,
			Bytes:    size,
			CRC32C:   crc,
		})
	}
	if err := appendLogRecord(manifestPath, st, rec); err != nil {
		return 0, err
	}
	if err := st.apply(rec, false); err != nil {
		return 0, fmt.Errorf("libindex: folding just-published delta record: %w", err)
	}
	return gen, nil
}

// AppendRetract publishes tombstones for the listed source ids as
// generation st.Generation+1. known must hold every source id the
// live partitions carry (e.g. collected from an OpenManifest handle):
// a tombstone for an id no generation carries would hide nothing and
// make the log unopenable (OpenManifest rejects it), so it is refused
// here, at the writer. On success st is advanced.
func AppendRetract(manifestPath string, st *ManifestState, ids []string, known map[string]bool) (uint64, error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("libindex: refusing to publish an empty retract record")
	}
	seen := make(map[string]bool, len(ids))
	sorted := make([]string, 0, len(ids))
	for _, id := range ids {
		if id == "" {
			return 0, fmt.Errorf("libindex: refusing to retract an empty id")
		}
		if !known[id] {
			return 0, fmt.Errorf("libindex: refusing to retract unknown id %q (no live generation carries it)", id)
		}
		if seen[id] {
			continue // collapse caller duplicates; the record must list each id once
		}
		seen[id] = true
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	gen := st.Generation + 1
	rec := LogRecord{Type: recordRetract, Generation: gen, Ids: sorted}
	if err := appendLogRecord(manifestPath, st, rec); err != nil {
		return 0, err
	}
	if err := st.apply(rec, false); err != nil {
		return 0, fmt.Errorf("libindex: folding just-published retract record: %w", err)
	}
	return gen, nil
}

// LiveIDs collects every source id the open index's partitions carry —
// the known set AppendRetract validates against.
func (pi *PartitionedIndex) LiveIDs() map[string]bool {
	ids := make(map[string]bool)
	for _, part := range pi.Parts {
		for _, e := range part.Lib.Entries {
			ids[e.ID] = true
		}
	}
	return ids
}
