package repro

// Acceptance tests for the paper's headline claims, each tied to the
// abstract's sentences. These run the same code paths as the figure
// experiments but assert the claims directly, so `go test .` is a
// one-command check that the reproduction still reproduces.

import (
	"math"
	"testing"
	"time"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/msdata"
	"repro/internal/perf"
	"repro/internal/rram"
)

// Claim: "utilizing multi-level-cell (MLC) RRAM memory to enhance
// storage capacity by 3x".
func TestClaimStorageCapacity3x(t *testing.T) {
	mlc := accel.DefaultChipSpec()
	slc := mlc
	slc.BitsPerCell = 1
	d := 8190
	ratio := float64(mlc.HypervectorsStorable(d)) / float64(slc.HypervectorsStorable(d))
	if math.Abs(ratio-3) > 0.01 {
		t.Errorf("MLC/SLC capacity ratio = %v, want 3x", ratio)
	}
}

// Claim: "up to 77x faster data processing with two to three orders of
// magnitude better energy efficiency".
func TestClaimSpeedupAndEnergy(t *testing.T) {
	rows := perf.Figure12(perf.DefaultAccelModel(), perf.IPRG2012Workload())
	var this, worstBase *perf.Fig12Row
	for i := range rows {
		switch rows[i].Name {
		case "This Work":
			this = &rows[i]
		case "HyperOMS (GPU)":
			worstBase = &rows[i]
		}
	}
	if this == nil || worstBase == nil {
		t.Fatal("rows missing")
	}
	if this.Speedup < 70 || this.Speedup > 85 {
		t.Errorf("speedup vs CPU = %v, want ~76.7x", this.Speedup)
	}
	// Energy vs the best baseline: 500x-3000x band ("two to three
	// orders of magnitude").
	ratio := this.EnergyImprovement / worstBase.EnergyImprovement
	if ratio < 100 || ratio > 5000 {
		t.Errorf("energy efficiency vs best baseline = %v, want 2-3 orders", ratio)
	}
}

// Claim: "tolerate up to 10% memory errors" — identifications at 10%
// injected BER stay within 25% of the near-clean level.
func TestClaimErrorTolerance10Percent(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the robustness experiment")
	}
	rows, err := experiments.Figure11(experiments.TestOptions(), "iPRG2012")
	if err != nil {
		t.Fatal(err)
	}
	base := rows[0].IDs[2] // 0.15% BER
	at10 := rows[3].IDs[2] // 10% BER
	at20 := rows[4].IDs[2] // 20% BER
	if base == 0 {
		t.Fatal("no identifications at minimal BER")
	}
	if float64(at10) < 0.75*float64(base) {
		t.Errorf("10%% BER broke search: %d -> %d", base, at10)
	}
	if at20 >= base {
		t.Errorf("20%% BER should degrade: %d vs %d", at20, base)
	}
}

// Claim (§5.2.2): "our design can activate up to 64 rows with 8-level
// RRAM, indicating an 16x increase in throughput".
func TestClaimRowActivation16x(t *testing.T) {
	tc := accel.DefaultThroughputComparison()
	if tc.RowSpeedup() != 16 {
		t.Errorf("row speedup = %v", tc.RowSpeedup())
	}
	if tc.ThisLevels != 8 || tc.ThisRows != 64 {
		t.Errorf("operating point: %+v", tc)
	}
}

// Claim (Fig. 7 band): 3 bits/cell storage BER lands near ~8-14% after
// a day while 1 bit/cell stays near zero.
func TestClaimStorageBERBands(t *testing.T) {
	dev3 := rram.NewDevice(rram.DefaultDeviceConfig(), 11)
	b3, err := rram.BitErrorRate(dev3, 2048, 3, 10, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	dev1 := rram.NewDevice(rram.DefaultDeviceConfig(), 12)
	b1, err := rram.BitErrorRate(dev1, 2048, 1, 10, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if b3 < 0.05 || b3 > 0.18 {
		t.Errorf("3b/cell one-day BER = %v, want ~8-14%%", b3)
	}
	if b1 > 0.005 {
		t.Errorf("1b/cell one-day BER = %v, want ~0", b1)
	}
}

// Claim (motivation): open search finds modified peptides that
// standard search cannot.
func TestClaimOpenSearchFindsModifications(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two engines")
	}
	ds, err := msdata.Generate(msdata.IPRG2012(0.001))
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.Accel.D = 2048
	p.Accel.NumChunks = 128
	open, _, err := core.BuildExact(p, ds.Library)
	if err != nil {
		t.Fatal(err)
	}
	psms, err := open.SearchAll(ds.Queries)
	if err != nil {
		t.Fatal(err)
	}
	mod := 0
	for _, psm := range psms {
		gt := ds.Truth[psm.QueryID]
		if gt.Modified && gt.Peptide == psm.Peptide {
			mod++
		}
	}
	if mod == 0 {
		t.Error("open search identified no modified peptides")
	}
}
