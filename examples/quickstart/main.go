// Quickstart: generate a small synthetic workload, build the HD open
// modification search engine, run the queries and print the
// identifications.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/msdata"
)

func main() {
	// 1. A small iPRG2012-like workload: reference library of
	// unmodified peptides plus queries, a third of which carry PTMs.
	ds, err := msdata.Generate(msdata.IPRG2012(0.001))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d library spectra, %d queries\n", len(ds.Library), len(ds.Queries))

	// 2. The engine: ID-Level HD encoding at D=2048 (the paper uses
	// 8192; smaller keeps the example instant), open precursor window
	// of [-150, +500] Da, 1% FDR.
	p := core.DefaultParams()
	p.Accel.D = 2048
	p.Accel.NumChunks = 128
	engine, _, err := core.BuildExact(p, ds.Library)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Search and filter.
	res, err := engine.Run(ds.Queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identified %d spectra at 1%% FDR (score threshold %.3f)\n",
		len(res.Accepted), res.Threshold)

	// 4. Check a few identifications against the generator's ground
	// truth, including recovered modification mass shifts.
	shown := 0
	for _, psm := range res.Accepted {
		gt := ds.Truth[psm.QueryID]
		if gt.Peptide != psm.Peptide || shown >= 5 {
			continue
		}
		status := "unmodified"
		if gt.Modified {
			status = fmt.Sprintf("modified %s (Δm=%.3f Da, observed %+.3f)",
				gt.ModName, gt.MassShift, psm.MassShift)
		}
		fmt.Printf("  %-22s -> %-20s %s\n", psm.QueryID, psm.Peptide, status)
		shown++
	}
}
