// Proteome demonstrates the realistic library-construction workflow:
// synthesize a proteome, digest it tryptically into a reference
// library, and run open modification search with the hybrid
// HD-search + shifted-dot rescoring pipeline.
//
//	go run ./examples/proteome
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/msdata"
)

func main() {
	// 1. Synthetic proteome: 120 proteins, digested to tryptic
	// peptides of 7-25 residues.
	pcfg := msdata.DefaultProteomeConfig()
	pcfg.NumProteins = 120
	proteins, err := msdata.GenerateProteome(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	var peptides int
	for _, p := range proteins {
		peptides += len(p.Peptides)
	}
	fmt.Printf("proteome: %d proteins -> %d tryptic peptides\n", len(proteins), peptides)

	// 2. A workload whose library is the digest.
	cfg := msdata.IPRG2012(0.002)
	cfg.NumReferences = 0 // whole digest
	ds, err := msdata.GenerateFromProteome(cfg, pcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library: %d targets + %d decoys; %d queries\n",
		ds.NumTargets, len(ds.Library)-ds.NumTargets, len(ds.Queries))

	// 3. HD engine plus shifted-dot rescoring of the HD shortlist.
	p := core.DefaultParams()
	p.Accel.D = 2048
	p.Accel.NumChunks = 128
	engine, _, err := core.BuildExact(p, ds.Library)
	if err != nil {
		log.Fatal(err)
	}
	rescorer, err := core.NewRescorer(engine, ds.Library, 0.7)
	if err != nil {
		log.Fatal(err)
	}

	plain, err := engine.Run(ds.Queries)
	if err != nil {
		log.Fatal(err)
	}
	hybrid, err := rescorer.Run(ds.Queries)
	if err != nil {
		log.Fatal(err)
	}
	cPlain, cHybrid := 0, 0
	for _, psm := range plain.Accepted {
		if ds.Truth[psm.QueryID].Peptide == psm.Peptide {
			cPlain++
		}
	}
	for _, psm := range hybrid.Accepted {
		if ds.Truth[psm.QueryID].Peptide == psm.Peptide {
			cHybrid++
		}
	}
	fmt.Printf("\n%-28s %6s %9s\n", "pipeline", "IDs", "correct")
	fmt.Printf("%-28s %6d %9d\n", "HD search", len(plain.Accepted), cPlain)
	fmt.Printf("%-28s %6d %9d\n", "HD + shifted-dot rescore", len(hybrid.Accepted), cHybrid)
}
