// Rramtolerance runs the same OMS workload on the ideal software
// backend and on backends with increasing injected memory error rates,
// demonstrating the HD robustness headline: search quality holds to
// about 10% bit errors and collapses beyond.
//
//	go run ./examples/rramtolerance
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/msdata"
)

func main() {
	ds, err := msdata.Generate(msdata.IPRG2012(0.002))
	if err != nil {
		log.Fatal(err)
	}
	p := core.DefaultParams()
	p.Accel.D = 2048
	p.Accel.NumChunks = 128

	ideal, _, err := core.BuildExact(p, ds.Library)
	if err != nil {
		log.Fatal(err)
	}
	idealRes, err := ideal.Run(ds.Queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ideal backend: %d identifications at 1%% FDR\n\n", len(idealRes.Accepted))

	fmt.Printf("%-8s %15s %10s\n", "BER", "identifications", "vs ideal")
	for _, ber := range []float64{0.0015, 0.01, 0.05, 0.10, 0.20, 0.30} {
		eng, err := core.BuildNoisy(p, ds.Library, core.NoiseSpec{
			EncodeBER:     ber,
			RefStorageBER: ber,
			Seed:          int64(ber * 1e4),
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(ds.Queries)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %15d %9.0f%%\n",
			fmt.Sprintf("%.2f%%", ber*100),
			len(res.Accepted),
			100*float64(len(res.Accepted))/float64(len(idealRes.Accepted)))
	}
	fmt.Println("\nSearch quality is flat through ~10% BER — the margin that lets")
	fmt.Println("the accelerator use dense, error-prone 3-bit MLC RRAM cells.")
}
