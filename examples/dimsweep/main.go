// Dimsweep studies the HD dimension / ID precision trade-off
// (paper Fig. 13 and §5.3.2): identifications versus hypervector
// dimension for each multi-bit ID precision, on the ideal backend.
//
//	go run ./examples/dimsweep
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/msdata"
)

func main() {
	ds, err := msdata.Generate(msdata.IPRG2012(0.002))
	if err != nil {
		log.Fatal(err)
	}

	dims := []int{512, 1024, 2048, 4096}
	fmt.Printf("%-6s %14s %14s %14s\n", "D", "precision=1b", "precision=2b", "precision=3b")
	for _, d := range dims {
		fmt.Printf("%-6d", d)
		for precision := 1; precision <= 3; precision++ {
			p := core.DefaultParams()
			p.Accel.D = d
			p.Accel.NumChunks = max(d/32, 32)
			p.Accel.IDPrecision = precision
			p.Accel.Seed = int64(d + precision)
			engine, _, err := core.BuildExact(p, ds.Library)
			if err != nil {
				log.Fatal(err)
			}
			res, err := engine.Run(ds.Queries)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %14d", len(res.Accepted))
		}
		fmt.Println()
	}
	fmt.Println("\nHigher dimension separates matches from noise; multi-bit ID")
	fmt.Println("precision buys identifications at the same dimension for free")
	fmt.Println("on MLC hardware (§4.2.2).")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
