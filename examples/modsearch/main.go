// Modsearch demonstrates the motivating workload of open modification
// search: a query carrying a post-translational modification matches
// nothing under a standard narrow-window search but is identified by
// the open search, with the modification's mass shift recovered from
// the precursor difference.
//
//	go run ./examples/modsearch
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/msdata"
	"repro/internal/peptide"
)

func main() {
	ds, err := msdata.Generate(msdata.IPRG2012(0.002))
	if err != nil {
		log.Fatal(err)
	}

	p := core.DefaultParams()
	p.Accel.D = 2048
	p.Accel.NumChunks = 128

	// Two engines over the same library: standard and open.
	standard := p
	standard.Open = false
	stdEngine, _, err := core.BuildExact(standard, ds.Library)
	if err != nil {
		log.Fatal(err)
	}
	openEngine, _, err := core.BuildExact(p, ds.Library)
	if err != nil {
		log.Fatal(err)
	}

	stdPSMs, err := stdEngine.SearchAll(ds.Queries)
	if err != nil {
		log.Fatal(err)
	}
	openPSMs, err := openEngine.SearchAll(ds.Queries)
	if err != nil {
		log.Fatal(err)
	}

	stdByQuery := map[string]bool{}
	for _, psm := range stdPSMs {
		if ds.Truth[psm.QueryID].Peptide == psm.Peptide {
			stdByQuery[psm.QueryID] = true
		}
	}

	var modTotal, modOpenOnly int
	fmt.Println("modified queries recovered only by open search:")
	shown := 0
	for _, psm := range openPSMs {
		gt := ds.Truth[psm.QueryID]
		if !gt.Modified || gt.Peptide != psm.Peptide {
			continue
		}
		modTotal++
		if stdByQuery[psm.QueryID] {
			continue
		}
		modOpenOnly++
		if shown < 8 {
			fmt.Printf("  %-22s %-18s %-16s Δm=%+8.3f Da\n",
				psm.QueryID, psm.Peptide, gt.ModName, psm.MassShift)
			shown++
		}
	}
	fmt.Printf("\n%d/%d correctly matched modified queries were invisible to standard search\n",
		modOpenOnly, modTotal)

	// The mass shifts cluster at known PTM deltas; tabulate them.
	fmt.Println("\nmass-shift histogram of open-search matches (|Δm| > 0.5 Da):")
	counts := map[string]int{}
	for _, psm := range openPSMs {
		if psm.MassShift > 0.5 || psm.MassShift < -0.5 {
			counts[nearestPTM(psm.MassShift)]++
		}
	}
	for _, m := range peptide.CommonModifications {
		if c := counts[m.Name]; c > 0 {
			fmt.Printf("  %-18s (%+9.4f Da): %d\n", m.Name, m.DeltaMass, c)
		}
	}
	if c := counts["other"]; c > 0 {
		fmt.Printf("  %-18s %12s: %d\n", "other", "", c)
	}
}

// nearestPTM names the catalogue modification closest to the shift,
// or "other" when nothing is within 0.25 Da.
func nearestPTM(shift float64) string {
	bestName, bestDist := "other", 0.25
	for _, m := range peptide.CommonModifications {
		d := shift - m.DeltaMass
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestName, bestDist = m.Name, d
		}
	}
	return bestName
}
