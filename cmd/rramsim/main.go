// Command rramsim exercises the standalone MLC RRAM chip simulator:
// storage bit-error sweeps over time and bits-per-cell, conductance
// histograms, and MVM error characterization.
//
//	rramsim -mode storage|histogram|mvm
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/rram"
)

func main() {
	mode := flag.String("mode", "storage", "storage, histogram or mvm")
	seed := flag.Int64("seed", 1, "random seed")
	d := flag.Int("d", 4096, "hypervector dimension for storage mode")
	count := flag.Int("count", 32, "hypervectors / trials per configuration")
	flag.Parse()

	switch *mode {
	case "storage":
		storageSweep(*seed, *d, *count)
	case "histogram":
		histogram(*seed)
	case "mvm":
		mvmSweep(*seed, *count)
	default:
		fmt.Fprintf(os.Stderr, "rramsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func storageSweep(seed int64, d, count int) {
	times := []struct {
		label   string
		elapsed time.Duration
	}{
		{"1s", time.Second}, {"30min", 30 * time.Minute},
		{"60min", time.Hour}, {"1day", 24 * time.Hour},
	}
	fmt.Printf("%-8s %12s %12s %12s\n", "time", "1 bit/cell", "2 bits/cell", "3 bits/cell")
	for _, tp := range times {
		fmt.Printf("%-8s", tp.label)
		for bits := 1; bits <= 3; bits++ {
			dev := rram.NewDevice(rram.DefaultDeviceConfig(), seed+int64(bits))
			ber, err := rram.BitErrorRate(dev, d, bits, count, tp.elapsed)
			fatalIf(err)
			fmt.Printf(" %11.3f%%", ber*100)
		}
		fmt.Println()
	}
}

func histogram(seed int64) {
	for _, levels := range []int{2, 4, 8} {
		dev := rram.NewDevice(rram.DefaultDeviceConfig(), seed+int64(levels))
		grid := rram.NewLevelGrid(levels, rram.DefaultDeviceConfig().GMax)
		cells := make([]rram.Cell, 4000)
		for i := range cells {
			dev.Program(&cells[i], grid.Target(i%levels))
		}
		fmt.Printf("%d-level cells, conductance distribution after 1 day:\n", levels)
		h := rram.Histogram(dev, cells, 24*time.Hour, 60)
		maxC := 1
		for _, c := range h {
			if c > maxC {
				maxC = c
			}
		}
		for _, c := range h {
			fmt.Print(strings.Repeat("#", c*40/maxC) + "\n")
		}
	}
}

func mvmSweep(seed int64, trials int) {
	fmt.Printf("%-6s %12s %12s %12s\n", "rows", "1 bit", "2 bits", "3 bits")
	for _, n := range []int{16, 32, 64, 128} {
		fmt.Printf("%-6d", n)
		for bits := 1; bits <= 3; bits++ {
			dev := rram.NewDevice(rram.DefaultDeviceConfig(), seed+int64(bits))
			xb, err := rram.NewCrossbar(rram.CrossbarConfig{
				Rows: 256, Cols: 64, ADCBits: 8, MaxActiveRows: 128, WeightBits: bits,
			}, dev)
			fatalIf(err)
			rng := rand.New(rand.NewSource(seed + int64(n)))
			weights := make([][]float64, 128)
			for i := range weights {
				weights[i] = make([]float64, 64)
				for j := range weights[i] {
					weights[i][j] = float64(rng.Intn(2)*2 - 1)
				}
			}
			fatalIf(xb.ProgramWeights(weights))
			var se, sw float64
			for trial := 0; trial < trials; trial++ {
				inputs := make([]float64, n)
				for i := range inputs {
					inputs[i] = float64(rng.Intn(2)*2 - 1)
				}
				got, err := xb.MVM(0, inputs, nil, 2*time.Hour)
				fatalIf(err)
				want, err := xb.IdealMVM(0, inputs, nil)
				fatalIf(err)
				for j := range got {
					diff := got[j] - want[j]
					se += diff * diff
					sw += want[j] * want[j]
				}
			}
			fmt.Printf(" %12.4f", math.Sqrt(se/sw))
		}
		fmt.Println()
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "rramsim: %v\n", err)
		os.Exit(1)
	}
}
