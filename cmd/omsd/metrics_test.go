package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/msdata"
	"repro/internal/obsv"
	"repro/internal/serve"
	"repro/internal/spectrum"
)

// obsvDaemon is testDaemon with an explicit serve.Config, so
// observability tests can set slow-query thresholds and ring sizes.
func obsvDaemon(t *testing.T, cfg serve.Config) (*daemon, *msdata.Dataset) {
	return obsvDaemonParams(t, cfg, nil)
}

// obsvDaemonParams is obsvDaemon with an engine-params hook, so the
// cascade-telemetry tests can serve a K-tier ladder engine.
func obsvDaemonParams(t *testing.T, cfg serve.Config, mutate func(*core.Params)) (*daemon, *msdata.Dataset) {
	t.Helper()
	ds, err := msdata.Generate(msdata.IPRG2012(0.001))
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.Accel.D = 1024
	p.Accel.NumChunks = 64
	if mutate != nil {
		mutate(&p)
	}
	engine, _, err := core.BuildExact(p, ds.Library)
	if err != nil {
		t.Fatal(err)
	}
	d := newDaemon(func() (*serving, error) {
		srv, err := serve.New(engine, cfg)
		if err != nil {
			return nil, err
		}
		return &serving{srv: srv, engine: engine, loaded: time.Now()}, nil
	})
	if _, err := d.reload(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.shutdown)
	return d, ds
}

// postQueries drives one MGF /search request through the handler.
func postQueries(t *testing.T, h http.Handler, ds *msdata.Dataset, header map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := spectrum.WriteMGF(&buf, ds.Queries); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/search", bytes.NewReader(buf.Bytes()))
	for k, v := range header {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search status %d: %s", rec.Code, rec.Body.String())
	}
	return rec
}

// scrape fetches /metrics and parses the exposition text.
func scrape(t *testing.T, h http.Handler) map[string]*obsv.PromFamily {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	fams, err := obsv.ParseProm(rec.Body)
	if err != nil {
		t.Fatalf("exposition text does not parse: %v", err)
	}
	return fams
}

// TestMetricsExposition is the /metrics golden test: the output must
// parse as Prometheus text format, carry the documented families with
// the right types, and every counter must be monotonic across scrapes
// with traffic in between.
func TestMetricsExposition(t *testing.T) {
	d, ds := obsvDaemon(t, serve.Config{MaxBatch: 16, MaxDelay: time.Millisecond})
	mux := d.mux()
	postQueries(t, mux, ds, nil)
	fams := scrape(t, mux)

	wantType := map[string]string{
		"oms_requests_total":              "counter",
		"oms_requests_completed_total":    "counter",
		"oms_requests_rejected_total":     "counter",
		"oms_requests_canceled_total":     "counter",
		"oms_request_errors_total":        "counter",
		"oms_batches_total":               "counter",
		"oms_slow_queries_total":          "counter",
		"oms_queue_depth":                 "gauge",
		"oms_batch_size":                  "histogram",
		"oms_request_latency_seconds":     "histogram",
		"oms_stage_seconds_total":         "counter",
		"oms_search_rows_swept_total":     "counter",
		"oms_search_rows_completed_total": "counter",
		"oms_reload_generation":           "gauge",
		"oms_reload_total":                "counter",
		"oms_reload_failures_total":       "counter",
		"oms_index_references":            "gauge",
		"oms_uptime_seconds":              "gauge",
	}
	for name, typ := range wantType {
		f, ok := fams[name]
		if !ok {
			t.Fatalf("family %s missing", name)
		}
		if f.Type != typ {
			t.Fatalf("family %s has type %s, want %s", name, f.Type, typ)
		}
		if f.Help == "" {
			t.Fatalf("family %s has no HELP line", name)
		}
	}
	if v, ok := fams["oms_requests_completed_total"].Sample("oms_requests_completed_total", ""); !ok || v <= 0 {
		t.Fatalf("no completed requests after traffic: %v", v)
	}
	if v, ok := fams["oms_reload_generation"].Sample("oms_reload_generation", ""); !ok || v != 1 {
		t.Fatalf("reload generation %v after initial load, want 1", v)
	}
	// Per-stage rollup: one sample per stage name, sweep nonzero.
	stages := fams["oms_stage_seconds_total"]
	if len(stages.Samples) != int(obsv.NumStages) {
		t.Fatalf("%d stage samples, want %d: %v", len(stages.Samples), obsv.NumStages, stages.Samples)
	}
	if v, ok := stages.Sample("oms_stage_seconds_total", `stage="sweep"`); !ok || v <= 0 {
		t.Fatalf("no sweep time in stage rollup: %v", stages.Samples)
	}
	// Histogram integrity: bucket counts cumulative, _count equals the
	// +Inf bucket.
	lat := fams["oms_request_latency_seconds"]
	count, _ := lat.Sample("oms_request_latency_seconds_count", "")
	inf, _ := lat.Sample("oms_request_latency_seconds_bucket", `le="+Inf"`)
	if count <= 0 || count != inf {
		t.Fatalf("latency histogram count %v != +Inf bucket %v", count, inf)
	}

	// Monotonicity: more traffic, then every counter value must be >=
	// its first reading.
	postQueries(t, mux, ds, nil)
	fams2 := scrape(t, mux)
	for _, name := range obsv.CounterNames(fams) {
		f1, f2 := fams[name], fams2[name]
		if f2 == nil {
			t.Fatalf("counter family %s vanished on rescrape", name)
		}
		for sample, v1 := range f1.Samples {
			if v2, ok := f2.Samples[sample]; !ok || v2 < v1 {
				t.Fatalf("counter %s went backwards: %v -> %v", sample, v1, v2)
			}
		}
	}
	was, _ := fams["oms_requests_completed_total"].Sample("oms_requests_completed_total", "")
	if got, _ := fams2["oms_requests_completed_total"].Sample("oms_requests_completed_total", ""); got <= was {
		t.Fatalf("completed counter did not advance with traffic: %v -> %v", was, got)
	}
}

// TestMetricsCascadeTierFamilies is the /metrics golden test for the
// K-tier ladder telemetry: serving a ladder engine must add the
// per-tier families — oms_tier_seconds_total,
// oms_cascade_tier_rows_total, oms_cascade_tier_prune_rate — with one
// sample per tier, while the per-stage rollup stays exactly NumStages
// samples (tier timings are a separate family, never extra stages).
func TestMetricsCascadeTierFamilies(t *testing.T) {
	// D=1024 → 16 packed words; the 2,4-word prefix ladder normalizes
	// to 3 tiers. BitLayout entropy rides along: the permutation must
	// be invisible to the telemetry surface.
	d, ds := obsvDaemonParams(t, serve.Config{MaxBatch: 16, MaxDelay: time.Millisecond}, func(p *core.Params) {
		p.Tiers = []int{2, 4}
		p.BitLayout = core.BitLayoutEntropy
	})
	mux := d.mux()
	postQueries(t, mux, ds, nil)
	fams := scrape(t, mux)

	const tiers = 3
	wantType := map[string]string{
		"oms_tier_seconds_total":      "counter",
		"oms_cascade_rows_total":      "counter",
		"oms_cascade_prune_rate":      "gauge",
		"oms_cascade_tier_rows_total": "counter",
	}
	for name, typ := range wantType {
		f, ok := fams[name]
		if !ok {
			t.Fatalf("family %s missing from a ladder engine's scrape", name)
		}
		if f.Type != typ {
			t.Fatalf("family %s has type %s, want %s", name, f.Type, typ)
		}
		if f.Help == "" {
			t.Fatalf("family %s has no HELP line", name)
		}
	}
	rows := fams["oms_cascade_tier_rows_total"]
	if len(rows.Samples) != tiers {
		t.Fatalf("%d tier-row samples, want %d: %v", len(rows.Samples), tiers, rows.Samples)
	}
	if v, ok := rows.Sample("oms_cascade_tier_rows_total", `tier="0"`); !ok || v <= 0 {
		t.Fatalf("tier-0 rows %v after traffic", v)
	}
	// Admission is non-increasing down the ladder.
	var prev float64
	for tier := 0; tier < tiers; tier++ {
		v, ok := rows.Sample("oms_cascade_tier_rows_total", fmt.Sprintf(`tier="%d"`, tier))
		if !ok {
			t.Fatalf("tier %d missing from %v", tier, rows.Samples)
		}
		if tier > 0 && v > prev {
			t.Fatalf("tier %d admitted %v rows, more than tier %d's %v", tier, v, tier-1, prev)
		}
		prev = v
	}
	if rates, ok := fams["oms_cascade_tier_prune_rate"]; ok {
		for sample, v := range rates.Samples {
			if v < 0 || v > 1 {
				t.Fatalf("prune rate %s = %v out of [0,1]", sample, v)
			}
		}
	}
	// Tier timings must not leak into the stage rollup.
	if got := len(fams["oms_stage_seconds_total"].Samples); got != int(obsv.NumStages) {
		t.Fatalf("%d stage samples with a ladder engine, want %d", got, int(obsv.NumStages))
	}
	if got := len(fams["oms_tier_seconds_total"].Samples); got != tiers {
		t.Fatalf("%d tier-seconds samples, want %d: %v", got, tiers, fams["oms_tier_seconds_total"].Samples)
	}
}

// TestMetricsConcurrentWithSearch hammers /metrics while /search
// traffic runs — the scrape path must be race-free against the
// dispatcher and engine counters (run under -race in CI).
func TestMetricsConcurrentWithSearch(t *testing.T) {
	d, ds := obsvDaemon(t, serve.Config{MaxBatch: 16, MaxDelay: time.Millisecond})
	mux := d.mux()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				postQueries(t, mux, ds, nil)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				scrape(t, mux)
				rec := httptest.NewRecorder()
				mux.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("stats status %d", rec.Code)
				}
			}
		}()
	}
	wg.Wait()
}

// TestStatsVsReloadRace snapshots Stats and scrapes /metrics
// concurrently with generation reloads — pinning that a stats read
// never tears against a SIGHUP swap (run under -race in CI).
func TestStatsVsReloadRace(t *testing.T) {
	d, ds := obsvDaemon(t, serve.Config{MaxBatch: 16, MaxDelay: time.Millisecond})
	mux := d.mux()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := d.reload(); err != nil {
				t.Errorf("reload: %v", err)
			}
		}
		close(stop)
	}()
	for w := 0; w < 2; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sv := d.acquire()
				if sv == nil {
					return
				}
				st := sv.srv.Stats()
				if st.Completed > st.Requests {
					t.Errorf("torn stats: completed %d > requests %d", st.Completed, st.Requests)
				}
				if st.CascadeCompleted > st.CascadePrefiltered {
					t.Errorf("torn cascade stats: completed %d > prefiltered %d", st.CascadeCompleted, st.CascadePrefiltered)
				}
				sv.release()
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				scrape(t, mux)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		postQueries(t, mux, ds, nil)
	}()
	wg.Wait()
	// The generation counter saw the initial load plus ten reloads.
	if g := d.generation.Load(); g != 11 {
		t.Fatalf("generation %d after 1 load + 10 reloads", g)
	}
}

// TestSlowestEndpoint drives traffic with a 1ns threshold (everything
// is slow) and checks /debug/slowest reports per-stage timings joined
// to the inbound request ID.
func TestSlowestEndpoint(t *testing.T) {
	d, ds := obsvDaemon(t, serve.Config{
		MaxBatch:           16,
		MaxDelay:           time.Millisecond,
		SlowQueryThreshold: time.Nanosecond,
	})
	// Route through the middleware so X-Request-ID lands in traces.
	h := withRequestID(d.mux(), false)
	postQueries(t, h, ds, map[string]string{"X-Request-ID": "req-slowest"})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowest", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("slowest status %d", rec.Code)
	}
	var body struct {
		Slowest []slowTraceView `json:"slowest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Slowest) == 0 {
		t.Fatal("no slow traces after traffic with a 1ns threshold")
	}
	for i, v := range body.Slowest {
		if i > 0 && v.TotalUS > body.Slowest[i-1].TotalUS {
			t.Fatalf("slowest not sorted by latency: %d above %d", v.TotalUS, body.Slowest[i-1].TotalUS)
		}
		if v.QueryID == "" || v.BatchID == 0 {
			t.Fatalf("trace %d missing identity: %+v", i, v)
		}
		if v.RequestID != "req-slowest" {
			t.Fatalf("trace %d request id %q, want req-slowest", i, v.RequestID)
		}
		for s := obsv.Stage(0); s < obsv.NumStages; s++ {
			if _, ok := v.StagesUS[s.String()]; !ok {
				t.Fatalf("trace %d missing stage %q: %v", i, s, v.StagesUS)
			}
		}
	}
	// The slow counter is visible on /metrics too.
	fams := scrape(t, h)
	if v, ok := fams["oms_slow_queries_total"].Sample("oms_slow_queries_total", ""); !ok || v <= 0 {
		t.Fatalf("oms_slow_queries_total %v after slow traffic", v)
	}
}

// TestRequestIDMiddleware pins header echo, ID generation and the
// access-log line format.
func TestRequestIDMiddleware(t *testing.T) {
	var gotCtxID string
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotCtxID = serve.RequestIDFrom(r.Context())
		w.WriteHeader(http.StatusTeapot)
		fmt.Fprint(w, "short and stout")
	})

	// Inbound ID: echoed and propagated.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-ID", "req-inbound")
	withRequestID(inner, false).ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "req-inbound" {
		t.Fatalf("response echoes %q, want req-inbound", got)
	}
	if gotCtxID != "req-inbound" {
		t.Fatalf("context carries %q, want req-inbound", gotCtxID)
	}

	// No inbound ID: one is generated, echoed and propagated.
	rec = httptest.NewRecorder()
	withRequestID(inner, false).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	gen := rec.Header().Get("X-Request-ID")
	if !strings.HasPrefix(gen, "req-") || gen != gotCtxID {
		t.Fatalf("generated id %q (context %q)", gen, gotCtxID)
	}

	// Access-log line: swap stderr for a pipe and check the fields.
	old := os.Stderr
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = pw
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/stats", nil)
	req.Header.Set("X-Request-ID", "req-logged")
	withRequestID(inner, true).ServeHTTP(rec, req)
	closeErr := pw.Close()
	os.Stderr = old
	if closeErr != nil {
		t.Fatal(closeErr)
	}
	line, err := io.ReadAll(pr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"omsd: access", "method=GET", "path=/stats", "status=418",
		fmt.Sprintf("bytes=%d", len("short and stout")), "duration_us=", "request_id=req-logged",
	} {
		if !strings.Contains(string(line), want) {
			t.Fatalf("access log line %q missing %q", line, want)
		}
	}
}
