package main

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fdr"
	"repro/internal/libindex"
	"repro/internal/msdata"
	"repro/internal/serve"
	"repro/internal/spectrum"
)

// TestReloadSwapConsistency is the hot-reload race test (run under
// -race in CI): searches hammer the daemon while SIGHUP-style reloads
// swap between two distinguishable engine generations. Every search
// must return a result consistent with exactly one generation — the
// complete answer of either the old or the new index, never a mix, and
// never an error from the swap itself — and the retired generation's
// teardown must not fire while its last searches are in flight.
func TestReloadSwapConsistency(t *testing.T) {
	ds, err := msdata.Generate(msdata.IPRG2012(0.001))
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.Accel.D = 1024
	p.Accel.NumChunks = 64

	// Generation A serves the library as-is; generation B serves the
	// same spectra with marked peptides, so every PSM names the
	// generation that produced it.
	libB := make([]*spectrum.Spectrum, len(ds.Library))
	for i, s := range ds.Library {
		c := *s
		c.Peptide = c.Peptide + "@B"
		libB[i] = &c
	}
	engineA, _, err := core.BuildExact(p, ds.Library)
	if err != nil {
		t.Fatal(err)
	}
	engineB, _, err := core.BuildExact(p, libB)
	if err != nil {
		t.Fatal(err)
	}

	type expectation struct {
		ok   bool
		a, b fdr.PSM
	}
	want := make(map[string]expectation)
	for _, q := range ds.Queries {
		pa, oka, err := engineA.SearchOne(q)
		if err != nil {
			t.Fatal(err)
		}
		pb, okb, err := engineB.SearchOne(q)
		if err != nil {
			t.Fatal(err)
		}
		if oka != okb {
			t.Fatalf("query %s matches in one generation only", q.ID)
		}
		want[q.ID] = expectation{ok: oka, a: pa, b: pb}
	}

	var gen atomic.Int64
	d := newDaemon(func() (*serving, error) {
		engine := core.SearchEngine(engineA)
		if gen.Add(1)%2 == 0 {
			engine = engineB
		}
		srv, err := serve.New(engine, serve.Config{MaxBatch: 8, MaxDelay: 200 * time.Microsecond})
		if err != nil {
			return nil, err
		}
		return &serving{srv: srv, engine: engine, loaded: time.Now()}, nil
	})
	if _, err := d.reload(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var reloads sync.WaitGroup
	reloads.Add(1)
	go func() {
		defer reloads.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.reload(); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 30; round++ {
				q := ds.Queries[(w+round)%len(ds.Queries)]
				sv := d.acquire()
				if sv == nil {
					t.Error("acquire returned nil while the daemon is live")
					return
				}
				psm, ok, err := sv.srv.Search(context.Background(), q)
				sv.release()
				if err != nil {
					t.Errorf("search %s across swap: %v", q.ID, err)
					return
				}
				exp := want[q.ID]
				if ok != exp.ok {
					t.Errorf("query %s ok=%v, both generations say %v", q.ID, ok, exp.ok)
					return
				}
				if ok && psm != exp.a && psm != exp.b {
					t.Errorf("query %s returned %+v, consistent with neither generation (%+v | %+v)",
						q.ID, psm, exp.a, exp.b)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reloads.Wait()
	d.shutdown()
	if sv := d.acquire(); sv != nil {
		sv.release()
		t.Fatal("acquire returned a generation after shutdown")
	}
}

// TestIncrementalReloadSwapConsistency is the hot-reload race test for
// the incremental-update pipeline (run under -race in CI): search
// traffic hammers the daemon through the REAL serving path — on-disk
// partitioned manifest, mmap-backed engine, micro-batcher — while a
// publisher thread appends delta generations (each planting an exact
// clone of one query spectrum, so consecutive generations answer that
// query differently), compacts, and hot-swaps after every publish.
// Every response must be the complete answer of exactly one published
// generation — never a torn mix — and never older than the newest
// generation whose reload had completed before the search was
// admitted.
func TestIncrementalReloadSwapConsistency(t *testing.T) {
	const generations = 6
	ds, err := msdata.Generate(msdata.Config{
		Name: "incr-swap", NumReferences: 260, NumQueries: 16,
		DecoyFraction: 0.5, ModifiedFraction: 0.3, ForeignFraction: 0.1,
		PeptideLenMin: 7, PeptideLenMax: 20, NoisePeaks: 8,
		PeakJitterDa: 0.02, IntensityJitter: 0.25, DropPeakProb: 0.1,
		MaxFragmentCharge: 2, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.Accel.D = 512
	p.Accel.NumChunks = 32
	queries := ds.Queries[:8]
	base := ds.Library[:200]
	pool := ds.Library[200:]

	manifest := filepath.Join(t.TempDir(), "lib.manifest")
	baseEngine, _, err := core.BuildExact(p, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := libindex.SavePartitioned(manifest, p, baseEngine.Library(), 3); err != nil {
		t.Fatal(err)
	}

	type expectation struct {
		ok  bool
		psm fdr.PSM
	}
	// snapshot answers every query against the manifest as it stands —
	// the complete per-generation truth a served response must match.
	snapshot := func() map[string]expectation {
		pi, err := libindex.OpenManifest(manifest)
		if err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		defer pi.Close()
		sp := pi.Params
		sp.Open = true // mirror buildServing's flag override
		pe, _, err := core.NewPartitionedEngine(sp, pi.PartitionSet())
		if err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		exp := make(map[string]expectation, len(queries))
		for _, q := range queries {
			psm, ok, err := pe.SearchOne(q)
			if err != nil {
				t.Fatalf("snapshot %s: %v", q.ID, err)
			}
			exp[q.ID] = expectation{ok: ok, psm: psm}
		}
		return exp
	}

	plan := make([]map[string]expectation, generations+1)
	plan[0] = snapshot()

	cfg := servingConfig{
		indexPath: manifest, maxBatch: 8, maxDelay: 200 * time.Microsecond,
		maxQueue: 1024, prefilterWords: -1, shortlist: -1,
	}
	d := newDaemon(func() (*serving, error) { return buildServing(cfg) })
	if _, err := d.reload(); err != nil {
		t.Fatal(err)
	}
	defer d.shutdown()

	// planned is the index of the newest generation whose snapshot is
	// in plan (stored before its reload, so a racing worker that lands
	// on the just-swapped generation finds its answers); reloaded is
	// the newest generation whose hot swap has completed (a search
	// admitted after that must not see anything older).
	var planned, reloaded atomic.Int64

	stop := make(chan struct{})
	var publisher sync.WaitGroup
	publisher.Add(1)
	go func() {
		defer publisher.Done()
		for g := 1; g <= generations; g++ {
			select {
			case <-stop:
				return
			default:
			}
			if g == generations/2 || g == generations {
				// Compaction publishes a new generation with the same
				// visible set: answers must not move by a bit.
				if _, err := libindex.Compact(manifest, 48); err != nil {
					t.Errorf("compact (gen %d): %v", g, err)
					return
				}
			} else {
				q := queries[(g-1)%len(queries)]
				plant := *q
				plant.ID = fmt.Sprintf("plant-%d", g)
				plant.Peptide = fmt.Sprintf("PLANT@%d", g)
				plant.Peaks = append([]spectrum.Peak(nil), q.Peaks...)
				chunk := []*spectrum.Spectrum{&plant}
				chunk = append(chunk, pool[(g-1)*4:(g-1)*4+4]...)
				st, err := libindex.LoadManifestLog(manifest)
				if err != nil {
					t.Errorf("publish gen %d: %v", g, err)
					return
				}
				mp, err := st.DecodeParams()
				if err != nil {
					t.Errorf("publish gen %d: %v", g, err)
					return
				}
				lib, err := libindex.BuildDeltaLibrary(chunk, mp, st.DimPerm)
				if err != nil {
					t.Errorf("publish gen %d: %v", g, err)
					return
				}
				if _, err := libindex.AppendDelta(manifest, st, lib, 32); err != nil {
					t.Errorf("publish gen %d: %v", g, err)
					return
				}
			}
			plan[g] = snapshot()
			planned.Store(int64(g))
			if _, err := d.reload(); err != nil {
				t.Errorf("reload gen %d: %v", g, err)
				return
			}
			reloaded.Store(int64(g))
			time.Sleep(500 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 60; round++ {
				q := queries[(w+round)%len(queries)]
				floor := reloaded.Load()
				sv := d.acquire()
				if sv == nil {
					t.Error("acquire returned nil while the daemon is live")
					return
				}
				psm, ok, err := sv.srv.Search(context.Background(), q)
				sv.release()
				if err != nil {
					t.Errorf("search %s across swap: %v", q.ID, err)
					return
				}
				ceil := planned.Load()
				// The response must reproduce some published generation's
				// answer exactly, and a fresh-enough one: at or above the
				// newest generation already swapped in when we started.
				matched := int64(-1)
				for g := ceil; g >= 0; g-- {
					exp := plan[g][q.ID]
					if ok == exp.ok && (!ok || psm == exp.psm) {
						matched = g
						break
					}
				}
				if matched < 0 {
					t.Errorf("query %s returned %+v ok=%v, consistent with no published generation 0..%d",
						q.ID, psm, ok, ceil)
					return
				}
				if matched < floor {
					t.Errorf("query %s answered by generation %d, but generation %d had already been swapped in",
						q.ID, matched, floor)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	publisher.Wait()
}
