package main

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fdr"
	"repro/internal/msdata"
	"repro/internal/serve"
	"repro/internal/spectrum"
)

// TestReloadSwapConsistency is the hot-reload race test (run under
// -race in CI): searches hammer the daemon while SIGHUP-style reloads
// swap between two distinguishable engine generations. Every search
// must return a result consistent with exactly one generation — the
// complete answer of either the old or the new index, never a mix, and
// never an error from the swap itself — and the retired generation's
// teardown must not fire while its last searches are in flight.
func TestReloadSwapConsistency(t *testing.T) {
	ds, err := msdata.Generate(msdata.IPRG2012(0.001))
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.Accel.D = 1024
	p.Accel.NumChunks = 64

	// Generation A serves the library as-is; generation B serves the
	// same spectra with marked peptides, so every PSM names the
	// generation that produced it.
	libB := make([]*spectrum.Spectrum, len(ds.Library))
	for i, s := range ds.Library {
		c := *s
		c.Peptide = c.Peptide + "@B"
		libB[i] = &c
	}
	engineA, _, err := core.BuildExact(p, ds.Library)
	if err != nil {
		t.Fatal(err)
	}
	engineB, _, err := core.BuildExact(p, libB)
	if err != nil {
		t.Fatal(err)
	}

	type expectation struct {
		ok   bool
		a, b fdr.PSM
	}
	want := make(map[string]expectation)
	for _, q := range ds.Queries {
		pa, oka, err := engineA.SearchOne(q)
		if err != nil {
			t.Fatal(err)
		}
		pb, okb, err := engineB.SearchOne(q)
		if err != nil {
			t.Fatal(err)
		}
		if oka != okb {
			t.Fatalf("query %s matches in one generation only", q.ID)
		}
		want[q.ID] = expectation{ok: oka, a: pa, b: pb}
	}

	var gen atomic.Int64
	d := newDaemon(func() (*serving, error) {
		engine := core.SearchEngine(engineA)
		if gen.Add(1)%2 == 0 {
			engine = engineB
		}
		srv, err := serve.New(engine, serve.Config{MaxBatch: 8, MaxDelay: 200 * time.Microsecond})
		if err != nil {
			return nil, err
		}
		return &serving{srv: srv, engine: engine, loaded: time.Now()}, nil
	})
	if _, err := d.reload(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var reloads sync.WaitGroup
	reloads.Add(1)
	go func() {
		defer reloads.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.reload(); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 30; round++ {
				q := ds.Queries[(w+round)%len(ds.Queries)]
				sv := d.acquire()
				if sv == nil {
					t.Error("acquire returned nil while the daemon is live")
					return
				}
				psm, ok, err := sv.srv.Search(context.Background(), q)
				sv.release()
				if err != nil {
					t.Errorf("search %s across swap: %v", q.ID, err)
					return
				}
				exp := want[q.ID]
				if ok != exp.ok {
					t.Errorf("query %s ok=%v, both generations say %v", q.ID, ok, exp.ok)
					return
				}
				if ok && psm != exp.a && psm != exp.b {
					t.Errorf("query %s returned %+v, consistent with neither generation (%+v | %+v)",
						q.ID, psm, exp.a, exp.b)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reloads.Wait()
	d.shutdown()
	if sv := d.acquire(); sv != nil {
		sv.release()
		t.Fatal("acquire returned a generation after shutdown")
	}
}
