// Command omsd is the resident open-modification-search daemon: it
// loads a persistent library index (built by omsbuild) at startup —
// milliseconds instead of re-encoding the library — and serves
// continuous query traffic over HTTP, coalescing concurrent requests
// into block-major batched sweeps of the packed reference store:
//
//	omsd -index lib.omsidx [-addr :8993] [-maxbatch 64] \
//	     [-maxdelay 1ms] [-maxqueue 4096] [-standard] [-topk 5] \
//	     [-prefilter-words 16] [-shortlist 0]
//
// -prefilter-words selects the two-tier pruned cascade search layout
// (exact; -shortlist M switches it to approximate best-M completion);
// GET /stats reports the measured pruning rate.
//
// Endpoints:
//
//	POST /search   MGF body (default) or JSON peak lists
//	               ({"spectra":[{"id","precursor_mz","charge","peaks":[[mz,intensity],...]}]});
//	               responds with PSM JSON, or TSV with ?format=tsv
//	GET  /healthz  liveness + library identity
//	GET  /stats    serving counters: queue depth, batch size
//	               histogram, latency quantiles, cascade pruning rate
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/libindex"
	"repro/internal/serve"
)

func main() {
	indexPath := flag.String("index", "", "library index path (required; build with omsbuild)")
	addr := flag.String("addr", ":8993", "HTTP listen address")
	maxBatch := flag.Int("maxbatch", 64, "flush a batch at this many coalesced requests")
	maxDelay := flag.Duration("maxdelay", time.Millisecond, "flush a non-empty batch after this delay")
	maxQueue := flag.Int("maxqueue", 4096, "admission bound on outstanding requests")
	standard := flag.Bool("standard", false, "narrow-window standard search instead of open search")
	topk := flag.Int("topk", 0, "matches retrieved per query (0 = index setting)")
	prefilterWords := flag.Int("prefilter-words", -1, "two-tier cascade: packed words per row in the prefilter tier (-1 = index setting, 0 = single-tier scan)")
	shortlist := flag.Int("shortlist", -1, "approximate cascade: complete only the best N prefilter rows per query (-1 = index setting, 0 = exact pruning bound)")
	flag.Parse()

	if *indexPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	p, lib, err := libindex.LoadFile(*indexPath)
	fatalIf(err)
	// Query-time settings may deviate from the build; encoder identity
	// (D, seeds, binner, preprocessing) must not and stays as loaded.
	p.Open = !*standard
	if *topk > 0 {
		p.TopK = *topk
	}
	if *prefilterWords >= 0 {
		p.PrefilterWords = *prefilterWords
	}
	if *shortlist >= 0 {
		p.ShortlistPerQuery = *shortlist
	}
	start := time.Now()
	engine, _, err := core.NewExactEngineFromLibrary(p, lib)
	fatalIf(err)
	// The searcher packed its own copy of the reference words; drop
	// the loaded originals so the resident set is one packed store,
	// not two.
	engine.ReleaseLibraryHVs()
	fmt.Fprintf(os.Stderr, "omsd: loaded %s: %d references, D=%d, engine up in %v\n",
		*indexPath, lib.Len(), p.Accel.D, time.Since(start).Round(time.Millisecond))
	// Report the effective layout (the searcher falls back to
	// single-tier when PrefilterWords covers every word of a row).
	if _, cascadeOn := engine.CascadeStats(); cascadeOn {
		fmt.Fprintf(os.Stderr, "omsd: cascade search: %d prefilter words, shortlist %d\n",
			p.PrefilterWords, p.ShortlistPerQuery)
	}

	srv, err := serve.New(engine, serve.Config{
		MaxBatch: *maxBatch,
		MaxDelay: *maxDelay,
		MaxQueue: *maxQueue,
	})
	fatalIf(err)

	d := &daemon{srv: srv, engine: engine, started: time.Now()}
	httpSrv := &http.Server{Handler: d.mux()}
	ln, err := net.Listen("tcp", *addr)
	fatalIf(err)
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	fmt.Fprintf(os.Stderr, "omsd: listening on %s\n", ln.Addr())
	fatalIf(serveUntilShutdown(httpSrv, ln, stop, 10*time.Second))
	srv.Close()
}

// serveUntilShutdown serves httpSrv on ln until stop delivers a
// signal, then shuts the server down gracefully — waiting up to
// timeout for in-flight handlers to drain — and reports the Shutdown
// outcome. It returns nil on a clean shutdown, the serve error when
// serving fails outright, and the Shutdown error (e.g. the deadline
// expiring with handlers still running) otherwise. The caller must
// only stop downstream components (the micro-batcher) after it
// returns, or a mid-request drain would fail those searches with
// ErrClosed.
func serveUntilShutdown(httpSrv *http.Server, ln net.Listener, stop <-chan os.Signal, timeout time.Duration) error {
	shutdownErr := make(chan error, 1)
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "omsd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		shutdownErr <- httpSrv.Shutdown(ctx)
	}()
	// Serve returns ErrServerClosed (possibly wrapped) the moment
	// Shutdown begins; any other error is a real serving failure and
	// Shutdown never ran.
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-shutdownErr
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "omsd: %v\n", err)
		os.Exit(1)
	}
}
