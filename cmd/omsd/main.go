// Command omsd is the resident open-modification-search daemon: it
// opens a persistent library index (built by omsbuild) at startup —
// memory-mapped, so startup is metadata-bound even for libraries far
// bigger than RAM — and serves continuous query traffic over HTTP,
// coalescing concurrent requests into block-major batched sweeps of
// the packed reference store:
//
//	omsd -index lib.omsidx [-addr :8993] [-maxbatch 64] \
//	     [-maxdelay 1ms] [-maxqueue 4096] [-standard] [-topk 5] \
//	     [-tiers 4,12,112] [-shortlist 0]
//
// -index accepts either a single index file or a partition manifest
// written by omsbuild -partitions; a partitioned library routes each
// query's precursor window through the manifest's mass fences, fans
// the batched search out across partitions, and merges per-partition
// top-k exactly — bit-identical to serving the single-file index.
//
// SIGHUP hot-reloads the index: the daemon rebuilds the engine from
// the (possibly rewritten) index path and swaps it under live traffic.
// Every in-flight search completes against exactly the generation that
// admitted it — never a mix — and the old mapping is released only
// after its last search returns. A failed reload leaves the current
// index serving.
//
// A partitioned index is incrementally updatable while omsd serves it:
// omsbuild -append publishes delta partitions (SIGHUP picks them up),
// and -compact-interval D runs the in-process compactor every D,
// folding accumulated deltas and tombstones back into the base tier
// and hot-reloading the compacted generation — all without dropping a
// query. With -compact-interval set, omsd must be the manifest's only
// writer; use the standalone omscompact when compaction is driven
// externally.
//
// -tiers selects the K-tier pruned cascade ladder (exact for any
// ladder; -shortlist M switches it to approximate best-M completion);
// -prefilter-words N is the deprecated two-tier alias, mutually
// exclusive with -tiers. GET /stats reports the measured per-tier row
// counts and pruning rates, per partition for a partitioned index. An
// index built with -bit-layout entropy serves transparently: the
// stored permutation is applied to every query at encode time.
//
// Endpoints:
//
//	POST /search   MGF body (default) or JSON peak lists
//	               ({"spectra":[{"id","precursor_mz","charge","peaks":[[mz,intensity],...]}]});
//	               responds with PSM JSON, or TSV with ?format=tsv
//	GET  /healthz  liveness + library identity
//	GET  /stats    serving counters: queue depth, batch size
//	               histogram, latency quantiles, cascade pruning rate,
//	               per-partition rows/fences/pruning
//	GET  /metrics  the same telemetry in Prometheus text exposition
//	               format, plus per-stage pipeline timings, reload
//	               generation and slow-query counters (DESIGN.md §10)
//	GET  /debug/slowest
//	               the worst-latency query traces with per-stage
//	               timings, latency descending
//
// Observability flags: -slow-query DURATION marks and logs requests at
// or above the threshold (they surface in /debug/slowest and
// oms_slow_queries_total either way); -access-log writes one
// structured line per HTTP request with X-Request-ID propagation
// (inbound header honored, generated otherwise, echoed on the
// response, and joined to slow-query traces via request_id);
// -debug-addr ADDR serves net/http/pprof on a second listener kept off
// the query port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/libindex"
)

func main() {
	indexPath := flag.String("index", "", "library index or partition manifest path (required; build with omsbuild)")
	addr := flag.String("addr", ":8993", "HTTP listen address")
	maxBatch := flag.Int("maxbatch", 64, "flush a batch at this many coalesced requests")
	maxDelay := flag.Duration("maxdelay", time.Millisecond, "flush a non-empty batch after this delay")
	maxQueue := flag.Int("maxqueue", 4096, "admission bound on outstanding requests")
	standard := flag.Bool("standard", false, "narrow-window standard search instead of open search")
	topk := flag.Int("topk", 0, "matches retrieved per query (0 = index setting)")
	tiersSpec := flag.String("tiers", "", "K-tier cascade ladder: comma-separated packed-word widths per tier, e.g. 4,12,112 (empty = index setting)")
	prefilterWords := flag.Int("prefilter-words", -1, "deprecated two-tier alias for -tiers N,rest (-1 = index setting, 0 = single-tier scan)")
	shortlist := flag.Int("shortlist", -1, "approximate cascade: complete only the best N tier-0 rows per query (-1 = index setting, 0 = exact pruning bound)")
	slowQuery := flag.Duration("slow-query", 0, "log a structured line for requests at or above this latency (0 = off)")
	accessLog := flag.Bool("access-log", false, "log one structured line per HTTP request")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off)")
	compactInterval := flag.Duration("compact-interval", 0, "run the in-process compactor this often on a partitioned index, folding delta partitions and tombstones into the base tier and hot-reloading the result (0 = off; omsd must be the only manifest writer)")
	compactMaxRefs := flag.Int("compact-max-part-refs", 0, "with -compact-interval: max references per compacted partition (0 = one partition per mass gap)")
	flag.Parse()

	if *indexPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *tiersSpec != "" && *prefilterWords >= 0 {
		fatalIf(fmt.Errorf("-tiers and -prefilter-words (its deprecated two-tier alias) are mutually exclusive"))
	}
	tiers, err := core.ParseTiers(*tiersSpec)
	fatalIf(err)
	cfg := servingConfig{
		indexPath:      *indexPath,
		maxBatch:       *maxBatch,
		maxDelay:       *maxDelay,
		maxQueue:       *maxQueue,
		standard:       *standard,
		topk:           *topk,
		tiers:          tiers,
		prefilterWords: *prefilterWords,
		shortlist:      *shortlist,
		slowQuery:      *slowQuery,
	}
	d := newDaemon(func() (*serving, error) { return buildServing(cfg) })
	start := time.Now()
	sv, err := d.reload()
	fatalIf(err)
	fmt.Fprintf(os.Stderr, "omsd: loaded %s, engine up in %v\n", sv.desc, time.Since(start).Round(time.Millisecond))
	// Report the effective layout (the searcher falls back to
	// single-tier when the configured ladder covers a row in one tier).
	if cs, cascadeOn := sv.engine.CascadeStats(); cascadeOn {
		switch {
		case len(sv.tiers) > 0:
			fmt.Fprintf(os.Stderr, "omsd: %d-tier cascade search: tiers %s, shortlist %d\n",
				cs.NumTiers(), core.FormatTiers(sv.tiers), sv.shortlist)
		default:
			fmt.Fprintf(os.Stderr, "omsd: cascade search: %d prefilter words, shortlist %d\n",
				sv.prefilterWords, sv.shortlist)
		}
	}

	httpSrv := &http.Server{Handler: withRequestID(d.mux(), *accessLog)}
	ln, err := net.Listen("tcp", *addr)
	fatalIf(err)
	if *debugAddr != "" {
		// pprof stays off the query port: a profile scrape must never
		// contend with /search on the same listener, and the debug
		// surface can be firewalled separately.
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		fatalIf(err)
		fmt.Fprintf(os.Stderr, "omsd: pprof on %s\n", dln.Addr())
		go func() {
			if err := http.Serve(dln, debugMux); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintf(os.Stderr, "omsd: pprof server: %v\n", err)
			}
		}()
	}
	if *compactInterval > 0 {
		if kind, err := libindex.DetectKind(*indexPath); err != nil || kind != libindex.KindManifest {
			fatalIf(fmt.Errorf("-compact-interval needs a partitioned index manifest at -index"))
		}
		go func() {
			// The in-process compactor presumes omsd is the only manifest
			// writer (see libindex: single-writer publish). Each pass that
			// actually publishes a generation is followed by a hot reload,
			// exactly like a SIGHUP — in-flight searches finish against the
			// generation that admitted them.
			ticker := time.NewTicker(*compactInterval)
			defer ticker.Stop()
			for range ticker.C {
				stats, err := libindex.Compact(*indexPath, *compactMaxRefs)
				if err != nil {
					d.compactFailures.Add(1)
					fmt.Fprintf(os.Stderr, "omsd: compaction failed, index unchanged: %v\n", err)
					continue
				}
				if stats.Noop {
					continue
				}
				d.compactions.Add(1)
				fmt.Fprintf(os.Stderr,
					"omsd: compacted to generation %d: %d partitions -> %d (%d refs merged, %d shadowed refs dropped, %d tombstones cleared)\n",
					stats.Generation, stats.DroppedPartitions, stats.NewPartitions,
					stats.MergedRefs, stats.RemovedRefs, stats.ClearedTombstones)
				nsv, err := d.reload()
				if err != nil {
					fmt.Fprintf(os.Stderr, "omsd: post-compaction reload failed, keeping current index: %v\n", err)
					continue
				}
				fmt.Fprintf(os.Stderr, "omsd: reloaded %s\n", nsv.desc)
			}
		}()
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			reloadStart := time.Now()
			nsv, err := d.reload()
			if err != nil {
				fmt.Fprintf(os.Stderr, "omsd: SIGHUP reload failed, keeping current index: %v\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "omsd: SIGHUP reloaded %s in %v\n", nsv.desc, time.Since(reloadStart).Round(time.Millisecond))
		}
	}()
	fmt.Fprintf(os.Stderr, "omsd: listening on %s\n", ln.Addr())
	fatalIf(serveUntilShutdown(httpSrv, ln, stop, 10*time.Second))
	d.shutdown()
}

// serveUntilShutdown serves httpSrv on ln until stop delivers a
// signal, then shuts the server down gracefully — waiting up to
// timeout for in-flight handlers to drain — and reports the Shutdown
// outcome. It returns nil on a clean shutdown, the serve error when
// serving fails outright, and the Shutdown error (e.g. the deadline
// expiring with handlers still running) otherwise. The caller must
// only stop downstream components (the micro-batcher) after it
// returns, or a mid-request drain would fail those searches with
// ErrClosed.
func serveUntilShutdown(httpSrv *http.Server, ln net.Listener, stop <-chan os.Signal, timeout time.Duration) error {
	shutdownErr := make(chan error, 1)
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "omsd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		shutdownErr <- httpSrv.Shutdown(ctx)
	}()
	// Serve returns ErrServerClosed (possibly wrapped) the moment
	// Shutdown begins; any other error is a real serving failure and
	// Shutdown never ran.
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return <-shutdownErr
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "omsd: %v\n", err)
		os.Exit(1)
	}
}
