// Command omsd is the resident open-modification-search daemon: it
// loads a persistent library index (built by omsbuild) at startup —
// milliseconds instead of re-encoding the library — and serves
// continuous query traffic over HTTP, coalescing concurrent requests
// into block-major batched sweeps of the packed reference store:
//
//	omsd -index lib.omsidx [-addr :8993] [-maxbatch 64] \
//	     [-maxdelay 1ms] [-maxqueue 4096] [-standard] [-topk 5]
//
// Endpoints:
//
//	POST /search   MGF body (default) or JSON peak lists
//	               ({"spectra":[{"id","precursor_mz","charge","peaks":[[mz,intensity],...]}]});
//	               responds with PSM JSON, or TSV with ?format=tsv
//	GET  /healthz  liveness + library identity
//	GET  /stats    serving counters: queue depth, batch size
//	               histogram, latency quantiles
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/libindex"
	"repro/internal/serve"
)

func main() {
	indexPath := flag.String("index", "", "library index path (required; build with omsbuild)")
	addr := flag.String("addr", ":8993", "HTTP listen address")
	maxBatch := flag.Int("maxbatch", 64, "flush a batch at this many coalesced requests")
	maxDelay := flag.Duration("maxdelay", time.Millisecond, "flush a non-empty batch after this delay")
	maxQueue := flag.Int("maxqueue", 4096, "admission bound on outstanding requests")
	standard := flag.Bool("standard", false, "narrow-window standard search instead of open search")
	topk := flag.Int("topk", 0, "matches retrieved per query (0 = index setting)")
	flag.Parse()

	if *indexPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	p, lib, err := libindex.LoadFile(*indexPath)
	fatalIf(err)
	// Query-time settings may deviate from the build; encoder identity
	// (D, seeds, binner, preprocessing) must not and stays as loaded.
	p.Open = !*standard
	if *topk > 0 {
		p.TopK = *topk
	}
	start := time.Now()
	engine, _, err := core.NewExactEngineFromLibrary(p, lib)
	fatalIf(err)
	// The searcher packed its own copy of the reference words; drop
	// the loaded originals so the resident set is one packed store,
	// not two.
	engine.ReleaseLibraryHVs()
	fmt.Fprintf(os.Stderr, "omsd: loaded %s: %d references, D=%d, engine up in %v\n",
		*indexPath, lib.Len(), p.Accel.D, time.Since(start).Round(time.Millisecond))

	srv, err := serve.New(engine, serve.Config{
		MaxBatch: *maxBatch,
		MaxDelay: *maxDelay,
		MaxQueue: *maxQueue,
	})
	fatalIf(err)

	d := &daemon{srv: srv, engine: engine, started: time.Now()}
	httpSrv := &http.Server{Addr: *addr, Handler: d.mux()}
	// ListenAndServe returns the moment Shutdown begins; the signal
	// goroutine owns the blocking Shutdown call (which waits for
	// in-flight handlers) and main must wait for it before stopping
	// the batcher, or a mid-request drain would fail those searches
	// with ErrClosed.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "omsd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()
	fmt.Fprintf(os.Stderr, "omsd: listening on %s\n", *addr)
	if err := httpSrv.ListenAndServe(); err != http.ErrServerClosed {
		fatalIf(err)
	}
	<-shutdownDone
	srv.Close()
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "omsd: %v\n", err)
		os.Exit(1)
	}
}
