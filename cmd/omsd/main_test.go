package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/msdata"
	"repro/internal/serve"
	"repro/internal/spectrum"
)

// testDaemon builds a daemon over a small exact engine, wired through
// the same reload machinery main uses.
func testDaemon(t *testing.T) (*daemon, *core.Engine, *msdata.Dataset) {
	t.Helper()
	ds, err := msdata.Generate(msdata.IPRG2012(0.001))
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.Accel.D = 1024
	p.Accel.NumChunks = 64
	engine, _, err := core.BuildExact(p, ds.Library)
	if err != nil {
		t.Fatal(err)
	}
	d := newDaemon(func() (*serving, error) {
		srv, err := serve.New(engine, serve.Config{MaxBatch: 16, MaxDelay: time.Millisecond})
		if err != nil {
			return nil, err
		}
		return &serving{srv: srv, engine: engine, loaded: time.Now()}, nil
	})
	if _, err := d.reload(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.shutdown)
	return d, engine, ds
}

func TestHealthz(t *testing.T) {
	d, _, _ := testDaemon(t)
	rec := httptest.NewRecorder()
	d.mux().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" || body["references"].(float64) <= 0 {
		t.Fatalf("unexpected healthz body %v", body)
	}
}

// TestSearchMGF posts the query set as MGF and pins that responses
// agree with direct engine search.
func TestSearchMGF(t *testing.T) {
	d, engine, ds := testDaemon(t)
	var buf bytes.Buffer
	if err := spectrum.WriteMGF(&buf, ds.Queries); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	d.mux().ServeHTTP(rec, httptest.NewRequest("POST", "/search", bytes.NewReader(buf.Bytes())))
	if rec.Code != http.StatusOK {
		t.Fatalf("search status %d: %s", rec.Code, rec.Body.String())
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(ds.Queries) {
		t.Fatalf("%d results for %d queries", len(resp.Results), len(ds.Queries))
	}
	byID := make(map[string]searchResult)
	var matched int
	for _, res := range resp.Results {
		if res.Error != "" {
			t.Fatalf("result %s carries error %q", res.QueryID, res.Error)
		}
		if res.Matched {
			matched++
		}
		byID[res.QueryID] = res
	}
	if matched == 0 {
		t.Fatal("no query matched")
	}
	for _, q := range ds.Queries {
		psm, ok, err := engine.SearchOne(q)
		if err != nil {
			t.Fatal(err)
		}
		res := byID[q.ID]
		if res.Matched != ok {
			t.Fatalf("query %s matched=%v, engine says %v", q.ID, res.Matched, ok)
		}
		if ok && (res.Peptide != psm.Peptide || res.Score != psm.Score) {
			t.Fatalf("query %s: served %+v, engine %+v", q.ID, res, psm)
		}
	}

	// Stats must reflect the traffic.
	rec = httptest.NewRecorder()
	d.mux().ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
	var st statsView
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Completed == 0 || st.Batches == 0 {
		t.Fatalf("stats did not count the traffic: %+v", st)
	}
}

// TestSearchJSON posts one spectrum as a JSON peak list.
func TestSearchJSON(t *testing.T) {
	d, engine, ds := testDaemon(t)
	q := ds.Queries[0]
	js := jsonSpectrum{ID: q.ID, PrecursorMZ: q.PrecursorMZ, Charge: q.Charge}
	for _, p := range q.Peaks {
		js.Peaks = append(js.Peaks, [2]float64{p.MZ, p.Intensity})
	}
	body, err := json.Marshal(searchRequest{Spectra: []jsonSpectrum{js}})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/search", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	d.mux().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search status %d: %s", rec.Code, rec.Body.String())
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].QueryID != q.ID {
		t.Fatalf("unexpected results %+v", resp.Results)
	}
	psm, ok, err := engine.SearchOne(q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Matched != ok || (ok && resp.Results[0].Peptide != psm.Peptide) {
		t.Fatalf("served %+v, engine ok=%v psm=%+v", resp.Results[0], ok, psm)
	}
}

// TestSearchTSV exercises the TSV response shape.
func TestSearchTSV(t *testing.T) {
	d, _, ds := testDaemon(t)
	var buf bytes.Buffer
	if err := spectrum.WriteMGF(&buf, ds.Queries[:3]); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	d.mux().ServeHTTP(rec, httptest.NewRequest("POST", "/search?format=tsv", bytes.NewReader(buf.Bytes())))
	if rec.Code != http.StatusOK {
		t.Fatalf("search status %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("TSV has %d lines, want 4:\n%s", len(lines), rec.Body.String())
	}
	if !strings.HasPrefix(lines[0], "query_id\tmatched\tpeptide") {
		t.Fatalf("bad TSV header %q", lines[0])
	}
}

// TestServeUntilShutdownGraceful is the graceful-shutdown regression
// test: a signal must drain in-flight handlers (not cut them off) and
// serveUntilShutdown must return nil on a clean stop — the seed
// compared the Serve error with != instead of errors.Is and discarded
// the Shutdown outcome entirely.
func TestServeUntilShutdownGraceful(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	httpSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
		fmt.Fprint(w, "drained")
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() { served <- serveUntilShutdown(httpSrv, ln, stop, 5*time.Second) }()

	body := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err != nil {
			body <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		body <- string(b)
	}()

	<-inHandler
	stop <- syscall.SIGTERM // shutdown begins with the request in flight
	select {
	case err := <-served:
		t.Fatalf("serveUntilShutdown returned %v before the in-flight handler finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if got := <-body; got != "drained" {
		t.Fatalf("in-flight request got %q, want %q", got, "drained")
	}
	if err := <-served; err != nil {
		t.Fatalf("clean shutdown returned %v, want nil", err)
	}
}

// TestServeUntilShutdownTimeout pins that a Shutdown that cannot
// drain in time surfaces its error instead of being discarded.
func TestServeUntilShutdownTimeout(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	httpSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() { served <- serveUntilShutdown(httpSrv, ln, stop, 20*time.Millisecond) }()
	go http.Get("http://" + ln.Addr().String() + "/")

	<-inHandler
	stop <- syscall.SIGTERM
	if err := <-served; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stuck handler shutdown returned %v, want context.DeadlineExceeded", err)
	}
}

// TestServeUntilShutdownServeError pins that a real serving failure is
// returned directly rather than masked as a shutdown.
func TestServeUntilShutdownServeError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ln.Close(); err != nil { // Serve on a closed listener fails immediately
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	defer close(stop)
	if err := serveUntilShutdown(&http.Server{}, ln, stop, time.Second); err == nil || errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("serve on closed listener returned %v, want a real error", err)
	}
}

// TestSearchBadBodies pins 400s for malformed input.
func TestSearchBadBodies(t *testing.T) {
	d, _, _ := testDaemon(t)
	cases := []struct {
		name, ctype, body string
	}{
		{"empty", "", ""},
		{"bad MGF", "", "BEGIN IONS\nTITLE=x\nnot a peak\nEND IONS\n"},
		{"bad JSON", "application/json", "{"},
		{"invalid spectrum", "application/json", `{"spectra":[{"id":"x","precursor_mz":-5,"charge":1,"peaks":[[100,1]]}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("POST", "/search", strings.NewReader(tc.body))
			if tc.ctype != "" {
				req.Header.Set("Content-Type", tc.ctype)
			}
			rec := httptest.NewRecorder()
			d.mux().ServeHTTP(rec, req)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", rec.Code)
			}
		})
	}
}
