package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/libindex"
	"repro/internal/serve"
)

// servingConfig is everything needed to (re)build the serving state
// from the index path — captured once from the flags so a SIGHUP
// reload constructs the new engine with the same query-time settings.
type servingConfig struct {
	indexPath string
	maxBatch  int
	maxDelay  time.Duration
	maxQueue  int
	standard  bool
	topk      int
	// tiers overrides the index's cascade ladder (nil = keep the index
	// setting); prefilterWords is the deprecated two-tier alias (-1 =
	// keep). Setting either replaces the stored ladder outright.
	tiers          []int
	prefilterWords int
	shortlist      int
	// slowQuery is the -slow-query latency threshold (0 = no threshold;
	// the slow ring still keeps the worst traces).
	slowQuery time.Duration
}

// serving is one generation of the daemon's serving state: an opened
// index (single-file or partitioned manifest), the engine over it, and
// the micro-batcher. Generations are reference-counted: the current
// pointer holds one reference and every in-flight search holds one
// more, so after a hot swap the old generation drains naturally — its
// batcher closes and its index unmaps only when the last search using
// it has returned. A search therefore always completes against exactly
// the generation it was admitted to: never a mix of old and new index,
// and never a mapping unmapped under a live scan.
type serving struct {
	srv        *serve.Server
	engine     core.SearchEngine
	closeIndex func() error
	desc       string
	partitions int
	// tiers/prefilterWords/shortlist are the effective cascade settings
	// the engine was built with (index params after flag overrides) —
	// the startup log must report these, not the "index setting" flag
	// sentinels.
	tiers          []int
	prefilterWords int
	shortlist      int
	loaded         time.Time
	// overlay is the incremental-update state of a partitioned index
	// (manifest generation, delta tier, tombstones); zero for
	// single-file indexes.
	overlay core.OverlayStats

	refs atomic.Int64
}

// release drops one reference, tearing the generation down when the
// last holder lets go. Teardown has no caller left to return an error
// to — the last searcher is already gone — so an unmap failure is
// reported to the operator log rather than silently dropped.
func (sv *serving) release() {
	if sv.refs.Add(-1) == 0 {
		sv.srv.Close()
		if sv.closeIndex != nil {
			if err := sv.closeIndex(); err != nil {
				fmt.Fprintf(os.Stderr, "omsd: closing retired index generation (%s): %v\n", sv.desc, err)
			}
		}
	}
}

// buildServing opens the index path (sniffing single index file vs
// partition manifest), wires the engine and starts a micro-batcher
// over it.
func buildServing(cfg servingConfig) (*serving, error) {
	override := func(p core.Params) core.Params {
		p.Open = !cfg.standard
		if cfg.topk > 0 {
			p.TopK = cfg.topk
		}
		if cfg.prefilterWords >= 0 {
			p.Tiers, p.PrefilterWords = nil, cfg.prefilterWords
		}
		if len(cfg.tiers) > 0 {
			p.Tiers, p.PrefilterWords = cfg.tiers, 0
		}
		if cfg.shortlist >= 0 {
			p.ShortlistPerQuery = cfg.shortlist
		}
		return p
	}
	kind, err := libindex.DetectKind(cfg.indexPath)
	if err != nil {
		return nil, err
	}
	sv := &serving{loaded: time.Now()}
	record := func(p core.Params) core.Params {
		sv.tiers = p.Tiers
		sv.prefilterWords = p.PrefilterWords
		sv.shortlist = p.ShortlistPerQuery
		return p
	}
	switch kind {
	case libindex.KindManifest:
		pi, err := libindex.OpenManifest(cfg.indexPath)
		if err != nil {
			return nil, err
		}
		set := pi.PartitionSet()
		engine, _, err := core.NewPartitionedEngine(record(override(pi.Params)), set)
		if err != nil {
			pi.Close()
			return nil, err
		}
		sv.engine = engine //oms:transfer the serving generation owns the mapping; release() closes engine and index together
		sv.closeIndex = pi.Close
		sv.partitions = engine.NumPartitions()
		sv.overlay = engine.OverlayStats()
		sv.desc = fmt.Sprintf("%s: manifest generation %d, %d references in %d partitions (%d deltas, %d tombstones), D=%d",
			cfg.indexPath, sv.overlay.Generation, engine.NumRefs(), engine.NumPartitions(),
			sv.overlay.DeltaPartitions, sv.overlay.Tombstones, pi.Params.Accel.D)
	default:
		ix, err := libindex.OpenFile(cfg.indexPath)
		if err != nil {
			return nil, err
		}
		engine, _, err := core.NewExactEngineFromPacked(record(override(ix.Params)), ix.Lib, ix.Words())
		if err != nil {
			ix.Close()
			return nil, err
		}
		// The searcher reads the packed block; the per-entry hypervector
		// views are dead weight in a resident process.
		engine.ReleaseLibraryHVs()
		sv.engine = engine //oms:transfer the serving generation owns the mapping; release() closes engine and index together
		sv.closeIndex = ix.Close
		sv.desc = fmt.Sprintf("%s: %d references, D=%d, mmap=%t",
			cfg.indexPath, engine.NumRefs(), ix.Params.Accel.D, ix.Mapped())
	}
	srv, err := serve.New(sv.engine, serve.Config{
		MaxBatch:           cfg.maxBatch,
		MaxDelay:           cfg.maxDelay,
		MaxQueue:           cfg.maxQueue,
		SlowQueryThreshold: cfg.slowQuery,
		OnSlowQuery:        logSlowQuery,
	})
	if err != nil {
		sv.closeIndex()
		return nil, err
	}
	sv.srv = srv
	return sv, nil
}

// daemon holds the swappable serving state behind the HTTP handlers.
type daemon struct {
	mu      sync.RWMutex
	cur     *serving
	build   func() (*serving, error)
	started time.Time

	// generation counts successful index loads (1 after the initial
	// load); reloadFailures counts failed reload attempts. Both feed
	// /metrics.
	generation     atomic.Uint64
	reloadFailures atomic.Uint64
	// compactions / compactFailures count in-process compactor runs
	// that published a generation, and runs that errored (-compact-
	// interval; no-op passes count as neither).
	compactions     atomic.Uint64
	compactFailures atomic.Uint64
}

// newDaemon wires a daemon around a serving builder; call reload once
// to load the initial generation.
func newDaemon(build func() (*serving, error)) *daemon {
	return &daemon{build: build, started: time.Now()}
}

// acquire returns the current serving generation with a reference
// held, or nil after shutdown. Callers must release exactly once.
func (d *daemon) acquire() *serving {
	d.mu.RLock()
	sv := d.cur
	if sv != nil {
		sv.refs.Add(1)
	}
	d.mu.RUnlock()
	return sv
}

// reload builds a fresh serving generation from the index path and
// swaps it in atomically; on error the current generation keeps
// serving untouched. Safe under live traffic: in-flight searches
// finish against whichever generation admitted them.
func (d *daemon) reload() (*serving, error) {
	nsv, err := d.build()
	if err != nil {
		d.reloadFailures.Add(1)
		return nil, err
	}
	nsv.refs.Store(1) // the daemon's own reference
	d.mu.Lock()
	old := d.cur
	d.cur = nsv
	d.mu.Unlock()
	d.generation.Add(1)
	if old != nil {
		old.release()
	}
	return nsv, nil
}

// shutdown retires the current generation; once in-flight searches
// drain, its batcher closes and its index unmaps.
func (d *daemon) shutdown() {
	d.mu.Lock()
	old := d.cur
	d.cur = nil
	d.mu.Unlock()
	if old != nil {
		old.release()
	}
}
