package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/spectrum"
)

// maxBodyBytes bounds a /search request body.
const maxBodyBytes = 64 << 20

// maxConcurrentSearches bounds one request body's concurrent
// submissions into the micro-batcher: several MaxBatch windows' worth
// of traffic to coalesce, but far below the default MaxQueue.
const maxConcurrentSearches = 256

// mux routes the daemon's endpoints.
func (d *daemon) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", d.handleSearch)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /stats", d.handleStats)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /debug/slowest", d.handleSlowest)
	return mux
}

// jsonSpectrum is one query spectrum in the JSON request body.
type jsonSpectrum struct {
	ID          string       `json:"id"`
	PrecursorMZ float64      `json:"precursor_mz"`
	Charge      int          `json:"charge"`
	Peaks       [][2]float64 `json:"peaks"`
}

// searchRequest is the JSON request envelope; a bare array of spectra
// is accepted too.
type searchRequest struct {
	Spectra []jsonSpectrum `json:"spectra"`
}

// searchResult is one query's outcome in the JSON response. Score and
// mass shift are always present: a legitimate shift of exactly zero
// (unmodified peptide) must be distinguishable from an absent field.
type searchResult struct {
	QueryID   string  `json:"query_id"`
	Matched   bool    `json:"matched"`
	Peptide   string  `json:"peptide,omitempty"`
	Score     float64 `json:"score"`
	MassShift float64 `json:"mass_shift"`
	Decoy     bool    `json:"decoy,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// searchResponse is the JSON response envelope.
type searchResponse struct {
	Results []searchResult `json:"results"`
}

// handleSearch parses the query spectra (MGF by default, JSON when the
// Content-Type says so), submits each through the micro-batcher on the
// request's context, and renders per-query results. Concurrent HTTP
// requests and multi-spectrum bodies coalesce into shared engine
// sweeps.
func (d *daemon) handleSearch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return
	}
	queries, err := parseQueries(r.Header.Get("Content-Type"), body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(queries) == 0 {
		http.Error(w, "no query spectra in request body", http.StatusBadRequest)
		return
	}

	// A bounded worker pool keeps one request body's in-flight
	// submissions well under the batcher's admission limit (default
	// MaxQueue 4096), so a large body saturates the coalescing window
	// without tripping queue-full against itself, while leaving
	// headroom for other clients.
	results := make([]searchResult, len(queries))
	workers := min(len(queries), maxConcurrentSearches)
	next := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				q := queries[i]
				res := searchResult{QueryID: q.ID}
				// Each search pins the serving generation it was admitted
				// to: a SIGHUP swap mid-body never mixes indexes within
				// one search, and the old index stays mapped until its
				// last search returns.
				sv := d.acquire()
				if sv == nil {
					res.Error = serve.ErrClosed.Error()
					results[i] = res
					continue
				}
				psm, ok, err := sv.srv.Search(r.Context(), q)
				sv.release()
				res.Matched = ok
				switch {
				case err != nil:
					res.Error = err.Error()
				case ok:
					res.Peptide = psm.Peptide
					res.Score = psm.Score
					res.MassShift = psm.MassShift
					res.Decoy = psm.IsDecoy
				}
				results[i] = res
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()

	// A queue-full rejection anywhere signals backpressure for the
	// whole response; partial results still ship in the body.
	status := http.StatusOK
	for _, res := range results {
		if res.Error == serve.ErrQueueFull.Error() {
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
			break
		}
	}
	if r.URL.Query().Get("format") == "tsv" {
		w.Header().Set("Content-Type", "text/tab-separated-values")
		w.WriteHeader(status)
		if err := writeTSV(w, results); err != nil {
			// Status is already on the wire; all that's left is to note
			// the truncated response.
			log.Printf("omsd: writing TSV response: %v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(searchResponse{Results: results})
}

// parseQueries decodes the request body: JSON when the content type
// says application/json, MGF text otherwise.
func parseQueries(contentType string, body []byte) ([]*spectrum.Spectrum, error) {
	if strings.HasPrefix(contentType, "application/json") {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		var req searchRequest
		if err := dec.Decode(&req); err != nil {
			// A bare array of spectra is accepted as shorthand.
			dec = json.NewDecoder(bytes.NewReader(body))
			dec.DisallowUnknownFields()
			if aerr := dec.Decode(&req.Spectra); aerr != nil {
				return nil, fmt.Errorf("decoding JSON spectra: %v", err)
			}
		}
		queries := make([]*spectrum.Spectrum, 0, len(req.Spectra))
		for i, js := range req.Spectra {
			s := &spectrum.Spectrum{
				ID:          js.ID,
				PrecursorMZ: js.PrecursorMZ,
				Charge:      js.Charge,
			}
			if s.ID == "" {
				s.ID = fmt.Sprintf("query-%d", i)
			}
			if s.Charge == 0 {
				s.Charge = 1
			}
			for _, p := range js.Peaks {
				s.Peaks = append(s.Peaks, spectrum.Peak{MZ: p[0], Intensity: p[1]})
			}
			s.SortPeaks()
			if err := s.Validate(); err != nil {
				return nil, fmt.Errorf("spectrum %d: %v", i, err)
			}
			queries = append(queries, s)
		}
		return queries, nil
	}
	queries, err := spectrum.ReadMGF(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("parsing MGF body: %v", err)
	}
	return queries, nil
}

// writeTSV renders results in omsearch's TSV shape plus a matched
// column (the daemon reports per-query outcomes, not an FDR-filtered
// collection).
func writeTSV(w io.Writer, results []searchResult) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "query_id\tmatched\tpeptide\tscore\tmass_shift"); err != nil {
		return err
	}
	for _, res := range results {
		if _, err := fmt.Fprintf(bw, "%s\t%t\t%s\t%.4f\t%+.4f\n",
			res.QueryID, res.Matched, res.Peptide, res.Score, res.MassShift); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// handleHealthz reports liveness and library identity.
func (d *daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sv := d.acquire()
	if sv == nil {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	defer sv.release()
	health := map[string]any{
		"status":            "ok",
		"references":        sv.engine.NumRefs(),
		"skipped":           sv.engine.Skipped(),
		"partitions":        sv.partitions,
		"index_age_seconds": int64(time.Since(sv.loaded).Seconds()),
		"uptime_seconds":    int64(time.Since(d.started).Seconds()),
	}
	if sv.partitions > 0 {
		health["manifest_generation"] = sv.overlay.Generation
		health["delta_partitions"] = sv.overlay.DeltaPartitions
		health["tombstones"] = sv.overlay.Tombstones
	}
	writeJSON(w, health)
}

// statsView maps serve.Stats onto stable wire names.
type statsView struct {
	Requests      uint64              `json:"requests"`
	Completed     uint64              `json:"completed"`
	Matched       uint64              `json:"matched"`
	Skipped       uint64              `json:"skipped"`
	Rejected      uint64              `json:"rejected"`
	Canceled      uint64              `json:"canceled"`
	Closed        uint64              `json:"closed"`
	Errors        uint64              `json:"errors"`
	Batches       uint64              `json:"batches"`
	QueueDepth    int                 `json:"queue_depth"`
	MeanBatchSize float64             `json:"mean_batch_size"`
	BatchSizes    []serve.BucketCount `json:"batch_size_histogram"`
	LatencyP50US  int64               `json:"latency_p50_us"`
	LatencyP99US  int64               `json:"latency_p99_us"`

	// Cascade pruning telemetry; the counters are meaningful (and zero
	// is a legitimate value) whenever CascadeEnabled is true. The
	// prefiltered/completed pair is the legacy first/last-tier view;
	// the tier slices carry the full ladder.
	CascadeEnabled     bool      `json:"cascade_enabled"`
	CascadePrefiltered uint64    `json:"cascade_prefiltered"`
	CascadeCompleted   uint64    `json:"cascade_completed"`
	CascadePruneRate   float64   `json:"cascade_prune_rate"`
	CascadeTierRows    []uint64  `json:"cascade_tier_rows,omitempty"`
	CascadeTierPrune   []float64 `json:"cascade_tier_prune_rates,omitempty"`

	// Partitions is present for a partitioned index: one entry per
	// partition with its global row span, mass fences and pruning
	// counters.
	Partitions []partitionView `json:"partitions,omitempty"`

	// Overlay is present for a partitioned index: the incremental-update
	// state the generation serves (manifest generation, delta tier,
	// outstanding tombstones and the rows they shadow).
	Overlay *overlayView `json:"overlay,omitempty"`
}

// partitionView maps core.PartitionStat onto stable wire names.
type partitionView struct {
	StartRow    int      `json:"start_row"`
	Refs        int      `json:"refs"`
	MinMass     float64  `json:"min_mass"`
	MaxMass     float64  `json:"max_mass"`
	Generation  uint64   `json:"generation"`
	Delta       bool     `json:"delta,omitempty"`
	HiddenRefs  int      `json:"hidden_refs,omitempty"`
	Prefiltered uint64   `json:"cascade_prefiltered"`
	Completed   uint64   `json:"cascade_completed"`
	PruneRate   float64  `json:"cascade_prune_rate"`
	TierRows    []uint64 `json:"cascade_tier_rows,omitempty"`
}

// overlayView maps core.OverlayStats onto stable wire names.
type overlayView struct {
	Generation      uint64 `json:"generation"`
	DeltaPartitions int    `json:"delta_partitions"`
	DeltaRefs       int    `json:"delta_refs"`
	Tombstones      int    `json:"tombstones"`
	HiddenRefs      int    `json:"hidden_refs"`
}

// handleStats renders the serving counters.
func (d *daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	sv := d.acquire()
	if sv == nil {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	defer sv.release()
	st := sv.srv.Stats()
	view := statsView{
		Requests:      st.Requests,
		Completed:     st.Completed,
		Matched:       st.Matched,
		Skipped:       st.Skipped,
		Rejected:      st.Rejected,
		Canceled:      st.Canceled,
		Closed:        st.Closed,
		Errors:        st.Errors,
		Batches:       st.Batches,
		QueueDepth:    st.QueueDepth,
		MeanBatchSize: st.MeanBatchSize,
		BatchSizes:    st.BatchSizes,
		LatencyP50US:  st.LatencyP50.Microseconds(),
		LatencyP99US:  st.LatencyP99.Microseconds(),

		CascadeEnabled:     st.CascadeEnabled,
		CascadePrefiltered: st.CascadePrefiltered,
		CascadeCompleted:   st.CascadeCompleted,
		CascadePruneRate:   st.CascadePruneRate,
		CascadeTierRows:    st.CascadeTierRows,
		CascadeTierPrune:   st.CascadeTierPruneRates,
	}
	if pe, ok := sv.engine.(interface{ PartitionStats() []core.PartitionStat }); ok {
		for _, ps := range pe.PartitionStats() {
			view.Partitions = append(view.Partitions, partitionView{
				StartRow:    ps.StartRow,
				Refs:        ps.Refs,
				MinMass:     ps.MinMass,
				MaxMass:     ps.MaxMass,
				Generation:  ps.Gen,
				Delta:       ps.Delta,
				HiddenRefs:  ps.HiddenRefs,
				Prefiltered: ps.Cascade.Prefiltered(),
				Completed:   ps.Cascade.Completed(),
				PruneRate:   ps.Cascade.PruneRate(),
				TierRows:    ps.Cascade.TierRows,
			})
		}
		ov := sv.overlay
		view.Overlay = &overlayView{
			Generation:      ov.Generation,
			DeltaPartitions: ov.DeltaPartitions,
			DeltaRefs:       ov.DeltaRefs,
			Tombstones:      ov.Tombstones,
			HiddenRefs:      ov.HiddenRefs,
		}
	}
	writeJSON(w, view)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil && !errors.Is(err, io.EOF) {
		// The connection is gone; nothing useful left to do.
		return
	}
}
