package main

import (
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/serve"
)

// handleMetrics renders the serving counters in the Prometheus text
// exposition format (version 0.0.4). Families and label names are
// documented in DESIGN.md §10 and pinned by TestMetricsExposition; all
// values come from one Stats snapshot plus the engine's partition
// telemetry, so a scrape never blocks a search beyond the collector
// mutex.
func (d *daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sv := d.acquire()
	if sv == nil {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	defer sv.release()
	st := sv.srv.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obsv.NewPromWriter(w)

	p.Counter("oms_requests_total", "Query submissions: admissions plus preparation failures.", float64(st.Requests))
	p.Counter("oms_requests_completed_total", "Requests whose batch delivered a result.", float64(st.Completed))
	p.Counter("oms_requests_matched_total", "Completed requests that produced a PSM.", float64(st.Matched))
	p.Counter("oms_requests_skipped_total", "Queries rejected before batching (preprocessing or empty precursor window).", float64(st.Skipped))
	p.Counter("oms_requests_rejected_total", "Admission-control rejections (queue full).", float64(st.Rejected))
	p.Counter("oms_requests_canceled_total", "Waiters whose context ended before a result.", float64(st.Canceled))
	p.Counter("oms_requests_closed_total", "Requests released by server shutdown.", float64(st.Closed))
	p.Counter("oms_request_errors_total", "Query encoding failures.", float64(st.Errors))
	p.Counter("oms_batches_total", "Flushed batches.", float64(st.Batches))
	p.Counter("oms_slow_queries_total", "Requests at or above the -slow-query threshold.", float64(st.SlowQueries))
	p.Gauge("oms_queue_depth", "Requests outstanding right now (queued or being scored).", float64(st.QueueDepth))

	bh := make([]obsv.HistBucket, len(st.BatchSizes))
	for i, b := range st.BatchSizes {
		bh[i] = obsv.HistBucket{Le: float64(b.Le), Count: b.Count}
	}
	// Batch sizes sum to the delivered-request total.
	p.Histogram("oms_batch_size", "Coalesced batch sizes (power-of-two buckets).", bh, float64(st.Completed), "")

	lh := make([]obsv.HistBucket, len(st.LatencyBuckets))
	for i, b := range st.LatencyBuckets {
		lh[i] = obsv.HistBucket{Le: float64(b.Le) / 1e6, Count: b.Count}
	}
	p.Histogram("oms_request_latency_seconds", "Request latency, enqueue to batch scored (power-of-two microsecond buckets).", lh, st.LatencySum.Seconds(), "")

	p.Family("oms_stage_seconds_total", "Cumulative per-stage pipeline time across traced requests and batches.", "counter")
	for _, s := range st.StageTotals {
		p.Sample("oms_stage_seconds_total", obsv.Label("stage", s.Stage), float64(s.Nanos)/1e9)
	}

	p.Counter("oms_search_rows_swept_total", "Candidate rows covered by traced sweeps (tier-0 prefixes under a cascade).", float64(st.RowsSwept))
	p.Counter("oms_search_rows_completed_total", "Rows whose final ladder tier was scored in traced sweeps.", float64(st.RowsCompleted))

	if len(st.TierTotals) > 0 {
		p.Family("oms_tier_seconds_total", "Cumulative per-cascade-tier sweep time across traced batches.", "counter")
		for _, s := range st.TierTotals {
			p.Sample("oms_tier_seconds_total", obsv.Label("tier", s.Stage), float64(s.Nanos)/1e9)
		}
	}

	if st.CascadeEnabled {
		p.Family("oms_cascade_rows_total", "Cascade pruning counters by tier across every search path (legacy first/last-tier pair).", "counter")
		p.Sample("oms_cascade_rows_total", obsv.Label("tier", "prefiltered"), float64(st.CascadePrefiltered))
		p.Sample("oms_cascade_rows_total", obsv.Label("tier", "completed"), float64(st.CascadeCompleted))
		p.Gauge("oms_cascade_prune_rate", "Fraction of tier-0 rows the cascade never completed.", st.CascadePruneRate)
		p.Family("oms_cascade_tier_rows_total", "Rows entering each cascade ladder tier.", "counter")
		for t, n := range st.CascadeTierRows {
			p.Sample("oms_cascade_tier_rows_total", obsv.Label("tier", strconv.Itoa(t)), float64(n))
		}
		if len(st.CascadeTierPruneRates) > 0 {
			p.Family("oms_cascade_tier_prune_rate", "Fraction of tier-t rows pruned before descending to tier t+1.", "gauge")
			for t, rate := range st.CascadeTierPruneRates {
				p.Sample("oms_cascade_tier_prune_rate", obsv.Label("tier", strconv.Itoa(t)), rate)
			}
		}
	}

	if pe, ok := sv.engine.(interface{ PartitionStats() []core.PartitionStat }); ok {
		stats := pe.PartitionStats()
		p.Family("oms_partition_refs", "References per partition.", "gauge")
		for i, ps := range stats {
			p.Sample("oms_partition_refs", partLabel(i), float64(ps.Refs))
		}
		p.Family("oms_partition_rows_swept_total", "Candidate rows swept per partition.", "counter")
		for i, ps := range stats {
			p.Sample("oms_partition_rows_swept_total", partLabel(i), float64(ps.RowsSwept))
		}
		p.Family("oms_partition_rows_prefiltered_total", "Cascade-prefiltered (tier-0) rows per partition.", "counter")
		for i, ps := range stats {
			p.Sample("oms_partition_rows_prefiltered_total", partLabel(i), float64(ps.Cascade.Prefiltered()))
		}
		p.Family("oms_partition_rows_completed_total", "Cascade-completed (final-tier) rows per partition.", "counter")
		for i, ps := range stats {
			p.Sample("oms_partition_rows_completed_total", partLabel(i), float64(ps.Cascade.Completed()))
		}
	}

	if sv.partitions > 0 {
		ov := sv.overlay
		p.Gauge("oms_manifest_generation", "Manifest-log generation the current index serves.", float64(ov.Generation))
		p.Gauge("oms_delta_partitions", "Delta-tier partitions in the current generation.", float64(ov.DeltaPartitions))
		p.Gauge("oms_delta_refs", "References in the delta tier.", float64(ov.DeltaRefs))
		p.Gauge("oms_tombstones", "Outstanding retractions (tombstones).", float64(ov.Tombstones))
		p.Gauge("oms_hidden_refs", "Physical rows shadowed by tombstones or newer-generation re-additions.", float64(ov.HiddenRefs))
	}
	p.Counter("oms_compactions_total", "In-process compactions published (omsd -compact-interval).", float64(d.compactions.Load()))
	p.Counter("oms_compaction_failures_total", "In-process compaction attempts that failed.", float64(d.compactFailures.Load()))

	p.Gauge("oms_reload_generation", "Serving generation id (1 = initial load, +1 per successful reload).", float64(d.generation.Load()))
	p.Counter("oms_reload_total", "Successful index loads, including the initial one.", float64(d.generation.Load()))
	p.Counter("oms_reload_failures_total", "Failed reload attempts (the previous index kept serving).", float64(d.reloadFailures.Load()))

	p.Gauge("oms_index_references", "Encoded references served by the current generation.", float64(sv.engine.NumRefs()))
	p.Gauge("oms_index_skipped_refs", "Reference spectra rejected by preprocessing at build time.", float64(sv.engine.Skipped()))
	p.Gauge("oms_index_partitions", "Partition count of the current index (0 = single file).", float64(sv.partitions))
	p.Gauge("oms_index_age_seconds", "Seconds since the current generation loaded.", time.Since(sv.loaded).Seconds())
	p.Gauge("oms_uptime_seconds", "Seconds since daemon start.", time.Since(d.started).Seconds())

	if err := p.Flush(); err != nil {
		log.Printf("omsd: writing /metrics response: %v", err)
	}
}

// partLabel renders the partition label for index i.
func partLabel(i int) string {
	return obsv.Label("partition", strconv.Itoa(i))
}

// slowTraceView is one slow-query trace on the wire: per-stage
// microseconds keyed by stage name, plus the identity joining it to
// the access log (request_id) and its batch (batch_id).
type slowTraceView struct {
	QueryID       string           `json:"query_id"`
	RequestID     string           `json:"request_id,omitempty"`
	BatchID       uint64           `json:"batch_id"`
	BatchSize     int              `json:"batch_size"`
	TotalUS       int64            `json:"total_us"`
	StagesUS      map[string]int64 `json:"stages_us"`
	TiersUS       map[string]int64 `json:"tiers_us,omitempty"`
	RowsSwept     int64            `json:"rows_swept"`
	RowsCompleted int64            `json:"rows_completed"`
	Partitions    []slowPartView   `json:"partitions,omitempty"`
}

// slowPartView is one partition's share of a slow query's batch sweep.
type slowPartView struct {
	Partition int   `json:"partition"`
	Rows      int   `json:"rows"`
	SweepUS   int64 `json:"sweep_us"`
}

// handleSlowest renders the worst-latency query traces (latency
// descending) with their per-stage timings.
func (d *daemon) handleSlowest(w http.ResponseWriter, r *http.Request) {
	sv := d.acquire()
	if sv == nil {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	defer sv.release()
	traces := sv.srv.Slowest()
	views := make([]slowTraceView, 0, len(traces))
	for i := range traces {
		views = append(views, slowView(&traces[i]))
	}
	writeJSON(w, map[string]any{"slowest": views})
}

// slowView converts a trace record to its wire shape.
func slowView(qt *obsv.QueryTrace) slowTraceView {
	v := slowTraceView{
		QueryID:       qt.QueryID,
		RequestID:     qt.RequestID,
		BatchID:       qt.BatchID,
		BatchSize:     qt.BatchSize,
		TotalUS:       qt.Total.Microseconds(),
		StagesUS:      make(map[string]int64, int(obsv.NumStages)),
		RowsSwept:     qt.RowsSwept,
		RowsCompleted: qt.RowsCompleted,
	}
	for s := obsv.Stage(0); s < obsv.NumStages; s++ {
		v.StagesUS[s.String()] = qt.Stage(s).Microseconds()
	}
	if qt.NumTiers > 0 {
		v.TiersUS = make(map[string]int64, qt.NumTiers)
		for t := 0; t < qt.NumTiers; t++ {
			v.TiersUS[obsv.TierName(t)] = time.Duration(qt.TierNanos[t]).Microseconds()
		}
	}
	for _, ps := range qt.Parts[:qt.NumParts] {
		v.Partitions = append(v.Partitions, slowPartView{
			Partition: ps.Index,
			Rows:      ps.Rows,
			SweepUS:   time.Duration(ps.Nanos).Microseconds(),
		})
	}
	return v
}

// logSlowQuery is the threshold-triggered structured log line, wired
// as the batcher's OnSlowQuery callback (dispatcher goroutine — one
// Fprintf, no locks).
func logSlowQuery(qt obsv.QueryTrace) {
	var tiers strings.Builder
	for t := 0; t < qt.NumTiers; t++ {
		fmt.Fprintf(&tiers, " %s_us=%d", obsv.TierName(t), time.Duration(qt.TierNanos[t]).Microseconds())
	}
	fmt.Fprintf(os.Stderr,
		"omsd: slow-query query_id=%s request_id=%s batch_id=%d batch_size=%d total_us=%d queue_wait_us=%d encode_us=%d assemble_us=%d sweep_us=%d%s merge_us=%d rows_swept=%d rows_completed=%d\n",
		qt.QueryID, qt.RequestID, qt.BatchID, qt.BatchSize, qt.Total.Microseconds(),
		qt.Stage(obsv.StageQueueWait).Microseconds(), qt.Stage(obsv.StageEncode).Microseconds(),
		qt.Stage(obsv.StageAssemble).Microseconds(), qt.Stage(obsv.StageSweep).Microseconds(),
		tiers.String(),
		qt.Stage(obsv.StageMerge).Microseconds(), qt.RowsSwept, qt.RowsCompleted)
}

// reqSeq numbers generated request IDs.
var reqSeq atomic.Uint64

// nextRequestID generates a process-unique request ID for requests
// that did not send X-Request-ID.
func nextRequestID() string {
	return fmt.Sprintf("req-%d-%d", os.Getpid(), reqSeq.Add(1))
}

// statusWriter captures the response status and body size for the
// access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

// withRequestID wraps a handler with X-Request-ID propagation: the
// inbound header (or a generated ID) is echoed on the response and
// attached to the request context, so every search the handler submits
// carries it into its trace record — the join key between the access
// log and /debug/slowest. When logLine is set (-access-log), one
// structured line per request goes to stderr; batches are shared
// across requests, so the per-batch ids live in the slow-query traces,
// joined via request_id.
func withRequestID(next http.Handler, logLine bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = nextRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(serve.WithRequestID(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if logLine {
			fmt.Fprintf(os.Stderr, "omsd: access method=%s path=%s status=%d bytes=%d duration_us=%d request_id=%s\n",
				r.Method, r.URL.Path, sw.status, sw.bytes, time.Since(start).Microseconds(), id)
		}
	})
}
