// Command omsvet runs the repo's invariant analyzers — the mechanical
// enforcement of the correctness rules the mmap-backed index, the
// cascade's shared atomic bound, and the hot-reload generation
// pinning depend on (DESIGN.md §9):
//
//	mmapwrite   no write/append to, or struct escape of, slices derived
//	            from the mmap-backed packed word block
//	atomicfield a field accessed through sync/atomic anywhere must be
//	            accessed atomically everywhere
//	genpin      every acquired serving generation is released on all
//	            paths (defer, or provably before every exit)
//	closeerr    Close/Shutdown/Sync/Munmap errors must not be silently
//	            discarded outside deferred cleanup and error paths
//
// Standalone (loads and typechecks from source, no toolchain cache):
//
//	go run ./cmd/omsvet ./...
//	omsvet [-test=false] [packages...]
//
// As a go vet tool (uses the go command's export data and caching):
//
//	go build -o bin/omsvet ./cmd/omsvet
//	go vet -vettool=$PWD/bin/omsvet ./...
//
// A finding is suppressed — visibly, auditable by grep — with an
// end-of-line directive naming the analyzer and a justification:
//
//	sh.a = block[lo:hi] //oms:allow(mmapwrite) searcher owns the alias
//
// The directive covers its own line and the next; an unknown analyzer
// name in a directive is itself a finding. Exit status: 0 clean,
// nonzero on findings or load errors.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/closeerr"
	"repro/internal/analysis/genpin"
	"repro/internal/analysis/mmapwrite"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		closeerr.Analyzer,
		genpin.Analyzer,
		mmapwrite.Analyzer,
	}
}

func main() {
	// The go vet protocol probes the tool identity first (the response
	// keys vet's result cache, so it must change when the binary does),
	// then asks for the tool's registered flags.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("omsvet version %s\n", selfHash())
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// A single *.cfg argument is a unitchecker invocation from go vet.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(analysis.RunUnitchecker(os.Args[1], analyzers(), os.Stderr))
	}

	tests := flag.Bool("test", true, "analyze _test.go files (in-package and external test variants)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(runStandalone(patterns, *tests, os.Stdout))
}

// runStandalone loads the patterns from source and reports findings to
// w, one file:line:col line each.
func runStandalone(patterns []string, tests bool, w io.Writer) int {
	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns, tests)
	if err != nil {
		fmt.Fprintf(w, "omsvet: %v\n", err)
		return 1
	}
	exit := 0
	// A file shared by a package and its `go list -test` variant (or by
	// several test binaries) is analyzed more than once; report each
	// finding a single time.
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(loader.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, analyzers())
		if err != nil {
			fmt.Fprintf(w, "omsvet: %v\n", err)
			return 1
		}
		for _, d := range diags {
			line := fmt.Sprintf("%s: %s: %s", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
			if seen[line] {
				continue
			}
			seen[line] = true
			fmt.Fprintln(w, line)
			exit = 2
		}
	}
	return exit
}

// selfHash digests the tool's own binary, giving go vet a version
// string that tracks every rebuild.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
