// Command omsvet runs the repo's invariant analyzers — the mechanical
// enforcement of the correctness rules the mmap-backed index, the
// cascade's shared atomic bound, and the hot-reload generation
// pinning depend on (DESIGN.md §9):
//
//	mmapwrite   no write/append to, or struct escape of, slices derived
//	            from the mmap-backed packed word block
//	atomicfield a field accessed through sync/atomic anywhere must be
//	            accessed atomically everywhere
//	genpin      every acquired serving generation is released on all
//	            paths (a CFG dataflow pass: defer, or provably released
//	            before every exit along every branch)
//	closeerr    Close/Shutdown/Sync/Munmap errors must not be silently
//	            discarded outside deferred cleanup and error paths
//	unmaplife   no view into an mmap generation is used or escapes after
//	            the owning Close/Munmap — "no view outlives its
//	            generation's Close"; //oms:transfer marks deliberate
//	            ownership handoffs
//	hotalloc    functions annotated //oms:hotpath must be allocation-free
//	            in steady state (no literals/make/new/naive append/boxing
//	            /defer-in-loop)
//
// Standalone (loads and typechecks from source, no toolchain cache):
//
//	go run ./cmd/omsvet ./...
//	omsvet [-test=false] [-json] [packages...]
//
// -json emits findings as a JSON array of {file,line,col,analyzer,
// message} objects on stdout instead of file:line:col text lines.
//
// As a go vet tool (uses the go command's export data and caching):
//
//	go build -o bin/omsvet ./cmd/omsvet
//	go vet -vettool=$PWD/bin/omsvet ./...
//
// A finding is suppressed — visibly, auditable by grep — with an
// end-of-line directive naming the analyzer and a justification:
//
//	sh.a = block[lo:hi] //oms:allow(mmapwrite) searcher owns the alias
//
// The directive covers its own line and the next; an unknown analyzer
// name in a directive is itself a finding. Exit status: 0 clean,
// nonzero on findings or load errors.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/closeerr"
	"repro/internal/analysis/genpin"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/mmapwrite"
	"repro/internal/analysis/unmaplife"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		closeerr.Analyzer,
		genpin.Analyzer,
		hotalloc.Analyzer,
		mmapwrite.Analyzer,
		unmaplife.Analyzer,
	}
}

func main() {
	// The go vet protocol probes the tool identity first (the response
	// keys vet's result cache, so it must change when the binary does),
	// then asks for the tool's registered flags.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("omsvet version %s\n", selfHash())
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// A single *.cfg argument is a unitchecker invocation from go vet.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(analysis.RunUnitchecker(os.Args[1], analyzers(), os.Stderr))
	}

	tests := flag.Bool("test", true, "analyze _test.go files (in-package and external test variants)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text lines")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(runStandalone(patterns, *tests, *jsonOut, os.Stdout))
}

// finding is one diagnostic in -json output.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// runStandalone loads the patterns from source and reports findings to
// w: one file:line:col line each, or a JSON array with jsonOut.
func runStandalone(patterns []string, tests, jsonOut bool, w io.Writer) int {
	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns, tests)
	if err != nil {
		fmt.Fprintf(w, "omsvet: %v\n", err)
		return 1
	}
	exit := 0
	// A file shared by a package and its `go list -test` variant (or by
	// several test binaries) is analyzed more than once; report each
	// finding a single time.
	seen := map[string]bool{}
	var findings []finding
	// One fact set spans the whole run: Load returns packages in
	// dependency order, so facts a package exports (mmapwrite's
	// returns-mmap-view seeds) are visible when its dependents run —
	// the standalone equivalent of the unitchecker's .vetx files.
	facts := analysis.NewFactSet()
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(loader.Fset, pkg.Files, pkg.Types, pkg.TypesInfo, analyzers(), facts)
		if err != nil {
			fmt.Fprintf(w, "omsvet: %v\n", err)
			return 1
		}
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			line := fmt.Sprintf("%s: %s: %s", pos, d.Analyzer, d.Message)
			if seen[line] {
				continue
			}
			seen[line] = true
			if jsonOut {
				findings = append(findings, finding{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: d.Analyzer, Message: d.Message,
				})
			} else {
				fmt.Fprintln(w, line)
			}
			exit = 2
		}
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "\t")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "omsvet: %v\n", err)
			return 1
		}
	}
	return exit
}

// selfHash digests the tool's own binary, giving go vet a version
// string that tracks every rebuild.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
