// Command omsbuild compiles an MGF/MSP spectral library into a
// persistent OMS library index — the one-time expensive write (full
// preprocessing + HD encoding of every reference spectrum) that the
// resident search daemon (omsd) and omsearch -index then amortize
// across arbitrarily many queries by loading the encoded library in
// milliseconds:
//
//	omsbuild -library lib.mgf -out lib.omsidx \
//	         [-d 8192] [-precision 3] [-shardsize 2048] [-seed 1] \
//	         [-tiers 4,12,112] [-bit-layout entropy] [-partitions N]
//
// The index records the full engine parameters (encoder seeds, binner,
// preprocessing, the cascade ladder) alongside the packed mass-ordered
// hypervectors, the precursor masses, the sort permutation and the
// entry metadata, under a CRC-32C checksum.
//
// -tiers bakes a default K-tier cascade ladder into the index
// (override at query time with omsearch/omsd -tiers);
// -prefilter-words N is the deprecated two-tier alias. -bit-layout
// entropy measures each encoded dimension's bit balance and permutes
// the dimensions so the most discriminative ones pack into the
// leading words — shallow tiers then carry the most pruning power per
// word. The permutation is persisted in the index (format version 3)
// and applied to every query at search time, so results are
// bit-identical to the natural layout.
//
// With -partitions N the library is instead split into N
// mass-contiguous partition index files (<out>.part000 …) plus a
// generation-log manifest at <out> recording the global mass fences,
// row offsets and per-partition checksums. omsearch -index and omsd
// -index accept the manifest wherever they accept a single index;
// partitions are opened memory-mapped, so a partitioned library larger
// than RAM serves queries with only the touched pages resident.
//
// A partitioned library is incrementally updatable:
//
//	omsbuild -append  -library new.mgf -out lib.manifest [-max-part-refs N]
//	omsbuild -retract -ids id1,id2,... -out lib.manifest
//
// -append encodes the new spectra with the library's stored params
// (encoder identity, binner, bit layout — the structural flags above
// are rejected) and publishes them as small delta partitions under
// one new manifest generation; -retract publishes tombstones hiding
// the listed source ids. Both publish by appending one fsynced record
// to the manifest log — a running omsd picks the new generation up on
// SIGHUP, and omscompact folds accumulated deltas back into the base
// tier.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/libindex"
	"repro/internal/spectrum"
)

func main() {
	libPath := flag.String("library", "", "library MGF/MSP path (required unless -retract)")
	out := flag.String("out", "", "output index path (default: library path + .omsidx); with -append/-retract: the existing manifest")
	d := flag.Int("d", 8192, "HD dimension")
	precision := flag.Int("precision", 3, "ID hypervector precision in bits (1-3)")
	shardSize := flag.Int("shardsize", 0, "reference rows per search shard (0 = default)")
	seed := flag.Int64("seed", 1, "random seed")
	tiersSpec := flag.String("tiers", "", "K-tier cascade ladder baked into the index: comma-separated packed-word widths per tier, e.g. 4,12,112 (empty = single-tier default)")
	bitLayout := flag.String("bit-layout", "", "bit layout: natural (default) or entropy (pack the most discriminative dimensions into the leading words; persisted in the index)")
	prefilterWords := flag.Int("prefilter-words", -1, "deprecated two-tier alias for -tiers N,rest (-1 = unset)")
	partitions := flag.Int("partitions", 0, "split the index into N mass-contiguous partitions plus a manifest (0 = single file)")
	appendMode := flag.Bool("append", false, "append -library as delta partitions to the existing partitioned index at -out (new manifest generation)")
	retractIDs := flag.String("retract", "", "publish tombstones for these comma-separated source ids to the partitioned index at -out")
	maxPartRefs := flag.Int("max-part-refs", 0, "with -append: max references per delta partition (0 = one partition per append)")
	flag.Parse()

	if *appendMode || *retractIDs != "" {
		incremental(*out, *libPath, *appendMode, *retractIDs, *maxPartRefs,
			*d != 8192 || *precision != 3 || *shardSize != 0 || *seed != 1 ||
				*tiersSpec != "" || *bitLayout != "" || *prefilterWords >= 0 || *partitions != 0)
		return
	}

	if *libPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *tiersSpec != "" && *prefilterWords >= 0 {
		fatalIf(fmt.Errorf("-tiers and -prefilter-words (its deprecated two-tier alias) are mutually exclusive"))
	}
	tiers, err := core.ParseTiers(*tiersSpec)
	fatalIf(err)
	if *out == "" {
		*out = *libPath + ".omsidx"
	}
	library, err := spectrum.ReadSpectraFile(*libPath)
	fatalIf(err)

	p := core.DefaultParams()
	p.Accel.D = *d
	p.Accel.NumChunks = max(*d/32, 32)
	p.Accel.IDPrecision = *precision
	p.Accel.Seed = *seed
	p.ShardSize = *shardSize
	p.BitLayout = *bitLayout
	if *prefilterWords >= 0 {
		p.PrefilterWords = *prefilterWords
	}
	p.Tiers = tiers

	engine, _, err := core.BuildExact(p, library)
	fatalIf(err)
	lib := engine.Library()
	if *partitions > 0 {
		fatalIf(libindex.SavePartitioned(*out, p, lib, *partitions))
		st, err := libindex.LoadManifestLog(*out)
		fatalIf(err)
		var total int64
		parts := st.Partitions()
		for _, part := range parts {
			total += part.Bytes
		}
		fmt.Fprintf(os.Stderr,
			"omsbuild: %s: %d references encoded (%d skipped), D=%d, %d partitions, %.1f MiB\n",
			*out, lib.Len(), lib.Skipped, *d, len(parts), float64(total)/(1<<20))
		return
	}
	fatalIf(libindex.SaveFile(*out, p, lib))

	info, err := os.Stat(*out)
	fatalIf(err)
	fmt.Fprintf(os.Stderr,
		"omsbuild: %s: %d references encoded (%d skipped), D=%d, %.1f MiB\n",
		*out, lib.Len(), lib.Skipped, *d, float64(info.Size())/(1<<20))
}

// incremental handles -append and -retract: both load the manifest's
// stored identity instead of taking structural flags, so a delta batch
// can never silently diverge from the base build.
func incremental(out, libPath string, appendMode bool, retractIDs string, maxPartRefs int, structuralFlags bool) {
	if out == "" {
		fatalIf(fmt.Errorf("-append/-retract require -out pointing at the existing manifest"))
	}
	if appendMode && retractIDs != "" {
		fatalIf(fmt.Errorf("-append and -retract are separate publishes; run them one at a time"))
	}
	if structuralFlags {
		fatalIf(fmt.Errorf("-append/-retract use the library's stored params; -d/-precision/-shardsize/-seed/-tiers/-bit-layout/-prefilter-words/-partitions must not be set"))
	}
	if kind, err := libindex.DetectKind(out); err != nil {
		fatalIf(err)
	} else if kind != libindex.KindManifest {
		fatalIf(fmt.Errorf("%s is a single-file index; incremental updates need a partitioned index (rebuild with -partitions)", out))
	}

	if !appendMode {
		var ids []string
		for _, id := range strings.Split(retractIDs, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
		pi, err := libindex.OpenManifest(out)
		fatalIf(err)
		known := pi.LiveIDs()
		st := pi.State
		fatalIf(pi.Close())
		gen, err := libindex.AppendRetract(out, st, ids, known)
		fatalIf(err)
		fmt.Fprintf(os.Stderr, "omsbuild: %s: generation %d retracts %d ids (%d tombstones outstanding)\n",
			out, gen, len(ids), len(st.Tombstones))
		return
	}

	if libPath == "" {
		fatalIf(fmt.Errorf("-append requires -library"))
	}
	spectra, err := spectrum.ReadSpectraFile(libPath)
	fatalIf(err)
	st, err := libindex.LoadManifestLog(out)
	fatalIf(err)
	p, err := st.DecodeParams()
	fatalIf(err)
	lib, err := libindex.BuildDeltaLibrary(spectra, p, st.DimPerm)
	fatalIf(err)
	if lib.Len() == 0 {
		fatalIf(fmt.Errorf("every spectrum in %s was rejected by preprocessing; nothing to append", libPath))
	}
	gen, err := libindex.AppendDelta(out, st, lib, maxPartRefs)
	fatalIf(err)
	fmt.Fprintf(os.Stderr,
		"omsbuild: %s: generation %d appends %d references (%d skipped); %d delta partitions live\n",
		out, gen, lib.Len(), lib.Skipped, len(st.Deltas))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "omsbuild: %v\n", err)
		os.Exit(1)
	}
}
