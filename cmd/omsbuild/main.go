// Command omsbuild compiles an MGF/MSP spectral library into a
// persistent OMS library index — the one-time expensive write (full
// preprocessing + HD encoding of every reference spectrum) that the
// resident search daemon (omsd) and omsearch -index then amortize
// across arbitrarily many queries by loading the encoded library in
// milliseconds:
//
//	omsbuild -library lib.mgf -out lib.omsidx \
//	         [-d 8192] [-precision 3] [-shardsize 2048] [-seed 1] \
//	         [-tiers 4,12,112] [-bit-layout entropy] [-partitions N]
//
// The index records the full engine parameters (encoder seeds, binner,
// preprocessing, the cascade ladder) alongside the packed mass-ordered
// hypervectors, the precursor masses, the sort permutation and the
// entry metadata, under a CRC-32C checksum.
//
// -tiers bakes a default K-tier cascade ladder into the index
// (override at query time with omsearch/omsd -tiers);
// -prefilter-words N is the deprecated two-tier alias. -bit-layout
// entropy measures each encoded dimension's bit balance and permutes
// the dimensions so the most discriminative ones pack into the
// leading words — shallow tiers then carry the most pruning power per
// word. The permutation is persisted in the index (format version 3)
// and applied to every query at search time, so results are
// bit-identical to the natural layout.
//
// With -partitions N the library is instead split into N
// mass-contiguous partition index files (<out>.part000 …) plus a JSON
// manifest at <out> recording the global mass fences, row offsets and
// per-partition checksums. omsearch -index and omsd -index accept the
// manifest wherever they accept a single index; partitions are opened
// memory-mapped, so a partitioned library larger than RAM serves
// queries with only the touched pages resident.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/libindex"
	"repro/internal/spectrum"
)

func main() {
	libPath := flag.String("library", "", "library MGF/MSP path (required)")
	out := flag.String("out", "", "output index path (default: library path + .omsidx)")
	d := flag.Int("d", 8192, "HD dimension")
	precision := flag.Int("precision", 3, "ID hypervector precision in bits (1-3)")
	shardSize := flag.Int("shardsize", 0, "reference rows per search shard (0 = default)")
	seed := flag.Int64("seed", 1, "random seed")
	tiersSpec := flag.String("tiers", "", "K-tier cascade ladder baked into the index: comma-separated packed-word widths per tier, e.g. 4,12,112 (empty = single-tier default)")
	bitLayout := flag.String("bit-layout", "", "bit layout: natural (default) or entropy (pack the most discriminative dimensions into the leading words; persisted in the index)")
	prefilterWords := flag.Int("prefilter-words", -1, "deprecated two-tier alias for -tiers N,rest (-1 = unset)")
	partitions := flag.Int("partitions", 0, "split the index into N mass-contiguous partitions plus a manifest (0 = single file)")
	flag.Parse()

	if *libPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *tiersSpec != "" && *prefilterWords >= 0 {
		fatalIf(fmt.Errorf("-tiers and -prefilter-words (its deprecated two-tier alias) are mutually exclusive"))
	}
	tiers, err := core.ParseTiers(*tiersSpec)
	fatalIf(err)
	if *out == "" {
		*out = *libPath + ".omsidx"
	}
	library, err := spectrum.ReadSpectraFile(*libPath)
	fatalIf(err)

	p := core.DefaultParams()
	p.Accel.D = *d
	p.Accel.NumChunks = max(*d/32, 32)
	p.Accel.IDPrecision = *precision
	p.Accel.Seed = *seed
	p.ShardSize = *shardSize
	p.BitLayout = *bitLayout
	if *prefilterWords >= 0 {
		p.PrefilterWords = *prefilterWords
	}
	p.Tiers = tiers

	engine, _, err := core.BuildExact(p, library)
	fatalIf(err)
	lib := engine.Library()
	if *partitions > 0 {
		fatalIf(libindex.SavePartitioned(*out, p, lib, *partitions))
		m, err := libindex.LoadManifest(*out)
		fatalIf(err)
		var total int64
		for _, part := range m.Partitions {
			total += part.Bytes
		}
		fmt.Fprintf(os.Stderr,
			"omsbuild: %s: %d references encoded (%d skipped), D=%d, %d partitions, %.1f MiB\n",
			*out, lib.Len(), lib.Skipped, *d, len(m.Partitions), float64(total)/(1<<20))
		return
	}
	fatalIf(libindex.SaveFile(*out, p, lib))

	info, err := os.Stat(*out)
	fatalIf(err)
	fmt.Fprintf(os.Stderr,
		"omsbuild: %s: %d references encoded (%d skipped), D=%d, %.1f MiB\n",
		*out, lib.Len(), lib.Skipped, *d, float64(info.Size())/(1<<20))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "omsbuild: %v\n", err)
		os.Exit(1)
	}
}
