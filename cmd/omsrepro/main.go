// Command omsrepro regenerates every table and figure of the paper's
// evaluation on the simulated MLC RRAM chip and synthetic workloads:
//
//	omsrepro [-scale S] [-seed N] [-only table1,fig7,...]
//
// Output is the text form of Table 1, Figures 7-13, the §5.2.2
// throughput comparison and the storage-density table. A scale of 1
// generates paper-sized datasets (1M-3M reference spectra); the
// default keeps runtime in minutes on a laptop. -only cascade-sweep
// runs the K-tier ladder sweep: every (ladder depth, bit layout)
// point checked PSM-identical against the single-tier engine, with
// the measured per-tier prune rates logged per point.
//
// -bench switches to the tracked performance trajectory instead: it
// measures the four canonical operating points (sharded full-scan
// batch, exact pruned cascade, partitioned fan-out, served
// micro-batching) and writes a schema-versioned BENCH_<date>.json
// into -bench-out (-bench-quick shrinks the reference sets for CI
// smoke runs). -bench-validate FILE checks an existing document
// against the schema and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/perfbench"
	"repro/internal/report"
)

func main() {
	scale := flag.Float64("scale", 0.004, "dataset scale relative to Table 1 sizes")
	seed := flag.Int64("seed", 1, "random seed")
	only := flag.String("only", "", "comma-separated subset: table1,fig7,fig8,fig9,fig10,fig11,fig12,fig13,throughput,storage,ablations,cascade-sweep,characterize")
	quick := flag.Bool("quick", false, "reduce Monte-Carlo sample counts")
	csvDir := flag.String("csv", "", "run every experiment and write CSVs to this directory instead of printing text")
	bench := flag.Bool("bench", false, "run the canonical operating-point benchmarks and write BENCH_<date>.json")
	benchOut := flag.String("bench-out", ".", "directory for the -bench JSON document")
	benchQuick := flag.Bool("bench-quick", false, "-bench with CI-sized reference sets")
	benchValidate := flag.String("bench-validate", "", "validate an existing BENCH_*.json against the schema and exit")
	flag.Parse()

	if *benchValidate != "" {
		data, err := os.ReadFile(*benchValidate)
		exitOn(err)
		exitOn(perfbench.Validate(data))
		fmt.Fprintf(os.Stderr, "omsrepro: %s is a valid %s document\n", *benchValidate, perfbench.Schema)
		return
	}
	if *bench || *benchQuick {
		start := time.Now()
		doc, err := perfbench.Run(perfbench.Options{Quick: *benchQuick})
		exitOn(err)
		path, err := doc.WriteFile(*benchOut)
		exitOn(err)
		// Round-trip the emitted file through the validator so the CI
		// artifact is schema-checked at the source.
		data, err := os.ReadFile(path)
		exitOn(err)
		exitOn(perfbench.Validate(data))
		fmt.Println(path)
		for _, pt := range doc.Points {
			fmt.Fprintf(os.Stderr, "omsrepro: bench %-12s %12.0f ns/op  %8.0f ns/query  %6d allocs/op\n",
				pt.Name, pt.NsPerOp, pt.NsPerQuery, pt.AllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "omsrepro: bench trajectory written in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	opts := experiments.Options{Scale: *scale, Seed: *seed, Quick: *quick}
	if *csvDir != "" {
		rr, err := report.Collect(opts)
		exitOn(err)
		written, err := rr.WriteDir(*csvDir)
		exitOn(err)
		for _, name := range written {
			fmt.Println(name)
		}
		fmt.Fprintf(os.Stderr, "omsrepro: wrote %d CSVs to %s in %v\n",
			len(written), *csvDir, rr.Finished.Sub(rr.Started).Round(time.Millisecond))
		return
	}
	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }
	start := time.Now()

	if run("table1") {
		rows, err := experiments.Table1(opts)
		exitOn(err)
		fmt.Println(experiments.RenderTable1(rows))
	}
	if run("fig7") {
		rows, err := experiments.Figure7(opts)
		exitOn(err)
		fmt.Println(experiments.RenderFigure7(rows))
	}
	if run("fig8") {
		data, err := experiments.Figure8(opts)
		exitOn(err)
		fmt.Println(experiments.RenderFigure8(data))
	}
	if run("fig9") {
		enc, err := experiments.Figure9Encoding(opts)
		exitOn(err)
		fmt.Println(experiments.RenderFigure9(enc, "a: Errors from Encoding (%)", true))
		sea, err := experiments.Figure9Search(opts)
		exitOn(err)
		fmt.Println(experiments.RenderFigure9(sea, "b: Errors from Search (RMSE)", false))
	}
	if run("fig10") {
		results, err := experiments.Figure10(opts)
		exitOn(err)
		fmt.Println(experiments.RenderFigure10(results))
	}
	if run("fig11") {
		for _, ds := range []string{"iPRG2012", "HEK293"} {
			rows, err := experiments.Figure11(opts, ds)
			exitOn(err)
			fmt.Println(experiments.RenderFigure11(rows, ds))
		}
	}
	if run("fig12") {
		fmt.Println(experiments.RenderFigure12(experiments.Figure12()))
	}
	if run("fig13") {
		rows, err := experiments.Figure13(opts)
		exitOn(err)
		fmt.Println(experiments.RenderFigure13(rows))
	}
	if run("throughput") {
		fmt.Println(experiments.RenderThroughput(experiments.Throughput()))
	}
	if run("storage") {
		fmt.Println(experiments.RenderStorage(experiments.Storage()))
	}
	if run("ablations") {
		ls, err := experiments.AblationLevelSets(opts)
		exitOn(err)
		fmt.Println(experiments.RenderLevelSetAblation(ls))
		gr, err := experiments.AblationGrayCoding(opts)
		exitOn(err)
		fmt.Println(experiments.RenderGrayAblation(gr))
		ov, err := experiments.AblationOpenVsStandard(opts)
		exitOn(err)
		fmt.Println(experiments.RenderOpenVsStandard(ov))
		ch, err := experiments.AblationChimeric(opts)
		exitOn(err)
		fmt.Println(experiments.RenderChimeric(ch))
	}
	if run("cascade-sweep") {
		rows, err := experiments.LadderSweep(opts)
		exitOn(err)
		fmt.Println(experiments.RenderLadderSweep(rows))
	}
	if run("characterize") {
		model, err := experiments.Characterized(opts)
		exitOn(err)
		fmt.Printf("Chip characterization: %v\n\n", model)
	}
	fmt.Fprintf(os.Stderr, "omsrepro: done in %v\n", time.Since(start).Round(time.Millisecond))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "omsrepro: %v\n", err)
		os.Exit(1)
	}
}
