// Command omsearch runs an open modification search of an MGF query
// file against an MGF spectral library using the HD engine:
//
//	omsearch -library lib.mgf -queries q.mgf [-backend ideal|rram] \
//	         [-d 8192] [-precision 3] [-fdr 0.01] [-standard] \
//	         [-parallel] [-shardsize 2048] [-tiers 4,12,112] \
//	         [-bit-layout entropy] [-shortlist 0]
//	omsearch -index lib.omsidx -queries q.mgf [-fdr 0.01] [-standard] \
//	         [-parallel] [-tiers 4,12,112] [-shortlist 0]
//
// -tiers selects the K-tier pruned cascade ladder: each reference
// row's packed words are sliced into the given widths, tier 0 scores
// every candidate, and each deeper tier scores only the rows whose
// partial distance can still enter the top-k — exact by construction
// for any ladder. -prefilter-words N is the deprecated two-tier alias
// (equivalent to -tiers N,rest); the two flags are mutually
// exclusive. With -shortlist M the ladder instead completes only the
// M best tier-0 rows per query (approximate,
// ANN-SoLo/HyperOMS-style). Per-tier pruning rates are reported on
// stderr.
//
// -bit-layout entropy (library builds only — an index's layout is
// fixed at omsbuild time) measures each dimension's bit balance over
// the encoded library and packs the most discriminative dimensions
// into the leading words, so shallow tiers carry the most pruning
// power per word. Queries are permuted identically at encode time:
// every Hamming distance, and therefore every result, is unchanged.
//
// With -library the encoded library is built from scratch; with
// -index (built by omsbuild) the encoded, mass-ordered library and
// its engine parameters are loaded from the persistent index in
// milliseconds — the encoder-identity flags (-d, -precision, -seed)
// come from the index and are ignored. -index accepts either a single
// index file (opened memory-mapped where supported: the packed words
// become zero-copy searcher rows and fault in lazily) or a partition
// manifest written by omsbuild -partitions, which routes each query's
// precursor window to the overlapping mass-fenced partitions and
// merges their top-k exactly — output is bit-identical to the
// single-file index over the same library. Either way each query's
// precursor window is a contiguous row range streamed through the
// sharded engine's blocked XOR+popcount kernel; with -parallel the
// whole query set is scored by one block-major batch sweep of the
// packed store. Results are written to stdout as a TSV of accepted
// PSMs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/fdr"
	"repro/internal/hdc"
	"repro/internal/libindex"
	"repro/internal/spectrum"
)

func main() {
	libPath := flag.String("library", "", "library MGF path (build the encoded library from spectra)")
	indexPath := flag.String("index", "", "persistent library index path (load instead of encoding; see omsbuild)")
	qPath := flag.String("queries", "", "query MGF path (required)")
	backend := flag.String("backend", "ideal", "search backend: ideal or rram")
	d := flag.Int("d", 8192, "HD dimension")
	precision := flag.Int("precision", 3, "ID hypervector precision in bits (1-3)")
	alpha := flag.Float64("fdr", 0.01, "FDR acceptance level")
	standard := flag.Bool("standard", false, "narrow-window standard search instead of open search")
	parallel := flag.Bool("parallel", false, "search queries across CPU cores")
	shardSize := flag.Int("shardsize", 0, "reference rows per search shard (0 = default)")
	tiersSpec := flag.String("tiers", "", "K-tier cascade ladder: comma-separated packed-word widths per tier, e.g. 4,12,112 (empty = index/default setting)")
	bitLayout := flag.String("bit-layout", "", "bit layout for -library builds: natural or entropy (empty = natural; an index's layout is fixed at build time)")
	prefilterWords := flag.Int("prefilter-words", -1, "deprecated two-tier alias for -tiers N,rest (-1 = index/default setting, 0 = single-tier scan)")
	shortlist := flag.Int("shortlist", -1, "approximate cascade: complete only the best N tier-0 rows per query (-1 = index/default setting, 0 = exact pruning bound)")
	rescore := flag.Float64("rescore", 0, "blend factor for shifted-dot rescoring of the HD shortlist (0 = off, 1 = pure shifted-dot)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if (*libPath == "") == (*indexPath == "") || *qPath == "" {
		fmt.Fprintln(os.Stderr, "omsearch: exactly one of -library and -index is required, plus -queries")
		flag.Usage()
		os.Exit(2)
	}
	if *tiersSpec != "" && *prefilterWords >= 0 {
		fatalIf(fmt.Errorf("-tiers and -prefilter-words (its deprecated two-tier alias) are mutually exclusive"))
	}
	tiers, err := core.ParseTiers(*tiersSpec)
	fatalIf(err)
	queries, err := spectrum.ReadSpectraFile(*qPath)
	fatalIf(err)

	var (
		engine  searchRunner
		library []*spectrum.Spectrum
	)
	if *indexPath != "" {
		if *backend != "ideal" {
			fatalIf(fmt.Errorf("backend %q requires -library (the index stores the exact encoded library)", *backend))
		}
		if *rescore > 0 {
			fatalIf(fmt.Errorf("-rescore needs the original library spectra: use -library"))
		}
		if *bitLayout != "" {
			fatalIf(fmt.Errorf("-bit-layout applies to -library builds; an index's layout is fixed when omsbuild writes it"))
		}
		// Query-time settings come from flags; encoder identity stays
		// as the index was built. Setting either cascade flag replaces
		// the index's stored ladder outright (Tiers and PrefilterWords
		// are mutually exclusive in core.Params).
		override := func(p core.Params) core.Params {
			p.FDRAlpha = *alpha
			p.Open = !*standard
			if *shardSize > 0 {
				p.ShardSize = *shardSize
			}
			if *prefilterWords >= 0 {
				p.Tiers, p.PrefilterWords = nil, *prefilterWords
			}
			if len(tiers) > 0 {
				p.Tiers, p.PrefilterWords = tiers, 0
			}
			if *shortlist >= 0 {
				p.ShortlistPerQuery = *shortlist
			}
			return p
		}
		kind, kerr := libindex.DetectKind(*indexPath)
		fatalIf(kerr)
		switch kind {
		case libindex.KindManifest:
			pi, perr := libindex.OpenManifest(*indexPath)
			fatalIf(perr)
			engine, _, err = core.NewPartitionedEngine(override(pi.Params), pi.PartitionSet())
			fatalIf(err)
		default:
			ix, oerr := libindex.OpenFile(*indexPath)
			fatalIf(oerr)
			engine, _, err = core.NewExactEngineFromPacked(override(ix.Params), ix.Lib, ix.Words())
			fatalIf(err)
		}
		// The index mappings stay open for the process lifetime; the
		// searcher rows are views over them.
	} else {
		library, err = spectrum.ReadSpectraFile(*libPath)
		fatalIf(err)
		p := core.DefaultParams()
		p.Accel.D = *d
		p.Accel.NumChunks = max(*d/32, 32)
		p.Accel.IDPrecision = *precision
		p.Accel.Seed = *seed
		p.FDRAlpha = *alpha
		p.Open = !*standard
		p.ShardSize = *shardSize
		p.BitLayout = *bitLayout
		if *prefilterWords >= 0 {
			p.Tiers, p.PrefilterWords = nil, *prefilterWords
		}
		if len(tiers) > 0 {
			p.Tiers, p.PrefilterWords = tiers, 0
		}
		if *shortlist >= 0 {
			p.ShortlistPerQuery = *shortlist
		}

		switch *backend {
		case "ideal":
			engine, _, err = core.BuildExact(p, library)
		case "rram":
			engine, err = core.BuildNoisy(p, library, core.NoiseSpec{
				EncodeBER:     0.04,
				RefStorageBER: 0.02,
				SearchSigma:   0.004 * float64(*d),
				Seed:          *seed + 1,
			})
		default:
			err = fmt.Errorf("unknown backend %q", *backend)
		}
		fatalIf(err)
	}

	var res fdr.Result
	switch {
	case *rescore > 0:
		rs, rerr := core.NewRescorer(engine.(*core.Engine), library, *rescore)
		fatalIf(rerr)
		res, err = rs.Run(queries)
	case *parallel:
		res, err = engine.RunParallel(queries)
	default:
		res, err = engine.Run(queries)
	}
	fatalIf(err)

	fatalIf(writePSMs(os.Stdout, res))
	fmt.Fprintf(os.Stderr,
		"omsearch: %d queries, %d library spectra (%d skipped), %d identifications at FDR %.2g\n",
		len(queries), engine.NumRefs(), engine.Skipped(), len(res.Accepted), *alpha)
	if cs, ok := engine.CascadeStats(); ok {
		fmt.Fprintf(os.Stderr,
			"omsearch: %d-tier cascade pruned %.1f%% of %d tier-0 rows (%d completed)\n",
			cs.NumTiers(), 100*cs.PruneRate(), cs.Prefiltered(), cs.Completed())
		for t := 0; t+1 < cs.NumTiers(); t++ {
			fmt.Fprintf(os.Stderr,
				"omsearch: tier %d: %d rows, %.1f%% pruned before tier %d\n",
				t, cs.TierRows[t], 100*cs.TierPruneRate(t), t+1)
		}
	}
	if pe, ok := engine.(*core.PartitionedEngine); ok {
		for i, st := range pe.PartitionStats() {
			line := fmt.Sprintf("omsearch: partition %d: rows [%d,%d) masses [%.2f,%.2f]",
				i, st.StartRow, st.StartRow+st.Refs, st.MinMass, st.MaxMass)
			if st.CascadeEnabled {
				line += fmt.Sprintf(", pruned %.1f%% of %d", 100*st.Cascade.PruneRate(), st.Cascade.Prefiltered())
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
}

// searchRunner is the engine surface omsearch drives: the single-store
// exact/noisy engine or the partitioned engine behind -index.
type searchRunner interface {
	Run(queries []*spectrum.Spectrum) (fdr.Result, error)
	RunParallel(queries []*spectrum.Spectrum) (fdr.Result, error)
	NumRefs() int
	Skipped() int
	CascadeStats() (hdc.CascadeStats, bool)
}

// writePSMs writes the accepted PSMs as TSV through one buffered
// writer, propagating the first write error instead of silently
// dropping output.
func writePSMs(w io.Writer, res fdr.Result) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "query_id\tpeptide\tscore\tmass_shift"); err != nil {
		return err
	}
	for _, psm := range res.Accepted {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%.4f\t%+.4f\n",
			psm.QueryID, psm.Peptide, psm.Score, psm.MassShift); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "omsearch: %v\n", err)
		os.Exit(1)
	}
}
