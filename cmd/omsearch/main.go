// Command omsearch runs an open modification search of an MGF query
// file against an MGF spectral library using the HD engine:
//
//	omsearch -library lib.mgf -queries q.mgf [-backend ideal|rram] \
//	         [-d 8192] [-precision 3] [-fdr 0.01] [-standard] \
//	         [-parallel] [-shardsize 2048]
//
// The encoded library is stored in ascending precursor-mass order, so
// each query's precursor window (open or standard) is a contiguous
// row range streamed through the sharded engine's blocked
// XOR+popcount kernel; with -parallel the whole query set is scored
// by one block-major batch sweep of the packed store. Results are
// written to stdout as a TSV of accepted PSMs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/fdr"
	"repro/internal/spectrum"
)

func main() {
	libPath := flag.String("library", "", "library MGF path (required)")
	qPath := flag.String("queries", "", "query MGF path (required)")
	backend := flag.String("backend", "ideal", "search backend: ideal or rram")
	d := flag.Int("d", 8192, "HD dimension")
	precision := flag.Int("precision", 3, "ID hypervector precision in bits (1-3)")
	alpha := flag.Float64("fdr", 0.01, "FDR acceptance level")
	standard := flag.Bool("standard", false, "narrow-window standard search instead of open search")
	parallel := flag.Bool("parallel", false, "search queries across CPU cores")
	shardSize := flag.Int("shardsize", 0, "reference rows per search shard (0 = default)")
	rescore := flag.Float64("rescore", 0, "blend factor for shifted-dot rescoring of the HD shortlist (0 = off, 1 = pure shifted-dot)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if *libPath == "" || *qPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	library, err := readMGF(*libPath)
	fatalIf(err)
	queries, err := readMGF(*qPath)
	fatalIf(err)

	p := core.DefaultParams()
	p.Accel.D = *d
	p.Accel.NumChunks = max(*d/32, 32)
	p.Accel.IDPrecision = *precision
	p.Accel.Seed = *seed
	p.FDRAlpha = *alpha
	p.Open = !*standard
	p.ShardSize = *shardSize

	var engine *core.Engine
	switch *backend {
	case "ideal":
		engine, _, err = core.BuildExact(p, library)
	case "rram":
		engine, err = core.BuildNoisy(p, library, core.NoiseSpec{
			EncodeBER:     0.04,
			RefStorageBER: 0.02,
			SearchSigma:   0.004 * float64(*d),
			Seed:          *seed + 1,
		})
	default:
		err = fmt.Errorf("unknown backend %q", *backend)
	}
	fatalIf(err)

	var res fdr.Result
	switch {
	case *rescore > 0:
		rs, rerr := core.NewRescorer(engine, library, *rescore)
		fatalIf(rerr)
		res, err = rs.Run(queries)
	case *parallel:
		res, err = engine.RunParallel(queries)
	default:
		res, err = engine.Run(queries)
	}
	fatalIf(err)

	fmt.Println("query_id\tpeptide\tscore\tmass_shift")
	for _, psm := range res.Accepted {
		fmt.Printf("%s\t%s\t%.4f\t%+.4f\n", psm.QueryID, psm.Peptide, psm.Score, psm.MassShift)
	}
	fmt.Fprintf(os.Stderr,
		"omsearch: %d queries, %d library spectra (%d skipped), %d identifications at FDR %.2g\n",
		len(queries), engine.Library().Len(), engine.Library().Skipped, len(res.Accepted), *alpha)
}

// readMGF reads a spectra file, selecting the parser by extension
// (.msp for NIST MSP, anything else MGF).
func readMGF(path string) ([]*spectrum.Spectrum, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".msp") {
		return spectrum.ReadMSP(f)
	}
	return spectrum.ReadMGF(f)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "omsearch: %v\n", err)
		os.Exit(1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
