// Command omscompact folds a partitioned library's delta tier back
// into its base tier: every delta partition published by omsbuild
// -append, every partition holding rows shadowed by tombstones or
// newer re-additions, and (transitively) every base partition whose
// mass fences touch one of those is merged, re-tiled into
// mass-contiguous base partitions, and published atomically as one new
// manifest generation — a single fsynced record append that a running
// omsd picks up on SIGHUP (or via its own -compact-interval loop)
// without dropping a query:
//
//	omscompact -index lib.manifest [-max-part-refs N] [-sweep] [-gc]
//
// Retired partition files are dropped from the manifest but left on
// disk, because a not-yet-reloaded omsd may still be serving from
// them. -sweep removes orphaned files no manifest record ever
// referenced (the leftovers of a writer that crashed between writing
// its partition files and publishing its record) — always safe when no
// writer is running. -gc additionally removes files that earlier
// generations referenced but the current one no longer does; run it
// only once every reader has reloaded past the compaction.
//
// omscompact is a manifest writer: run at most one writer (omsbuild
// -append/-retract, omscompact, or omsd -compact-interval) at a time.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/libindex"
)

func main() {
	indexPath := flag.String("index", "", "partitioned index manifest path (required)")
	maxPartRefs := flag.Int("max-part-refs", 0, "max references per compacted partition (0 = one partition per mass gap)")
	sweep := flag.Bool("sweep", false, "after compacting, remove orphaned partition files no manifest record ever referenced (crash leftovers; safe when no writer is running)")
	gc := flag.Bool("gc", false, "after compacting, also remove retired partition files dropped by earlier generations (UNSAFE while readers of older generations are live)")
	flag.Parse()

	if *indexPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if kind, err := libindex.DetectKind(*indexPath); err != nil {
		fatalIf(err)
	} else if kind != libindex.KindManifest {
		fatalIf(fmt.Errorf("%s is a single-file index; only partitioned indexes compact", *indexPath))
	}

	stats, err := libindex.Compact(*indexPath, *maxPartRefs)
	fatalIf(err)
	if stats.Noop {
		fmt.Fprintf(os.Stderr, "omscompact: %s: nothing to compact (no deltas, no tombstones, no shadowed rows)\n", *indexPath)
	} else {
		fmt.Fprintf(os.Stderr,
			"omscompact: %s: generation %d: %d partitions -> %d (%d refs merged, %d shadowed refs dropped, %d tombstones cleared)\n",
			*indexPath, stats.Generation, stats.DroppedPartitions, stats.NewPartitions,
			stats.MergedRefs, stats.RemovedRefs, stats.ClearedTombstones)
	}

	if *sweep || *gc {
		st, err := libindex.LoadManifestLog(*indexPath)
		fatalIf(err)
		removed, err := libindex.SweepOrphans(*indexPath, st)
		fatalIf(err)
		if *gc {
			retired, err := libindex.SweepRetired(*indexPath, st)
			fatalIf(err)
			removed = append(removed, retired...)
		}
		if len(removed) > 0 {
			fmt.Fprintf(os.Stderr, "omscompact: removed %d unreferenced partition files\n", len(removed))
		}
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "omscompact: %v\n", err)
		os.Exit(1)
	}
}
