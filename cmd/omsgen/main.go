// Command omsgen generates synthetic OMS workloads to MGF files:
//
//	omsgen -preset iPRG2012 -scale 0.01 -out /tmp/ds
//
// writes /tmp/ds.library.mgf, /tmp/ds.queries.mgf and
// /tmp/ds.truth.tsv (query ground truth for evaluation).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/msdata"
	"repro/internal/spectrum"
)

func main() {
	preset := flag.String("preset", "iPRG2012", "dataset preset: iPRG2012 or HEK293")
	scale := flag.Float64("scale", 0.01, "scale relative to Table 1 sizes")
	out := flag.String("out", "dataset", "output path prefix")
	seed := flag.Int64("seed", 0, "extra seed offset")
	proteome := flag.Bool("proteome", false, "build the library from a digested synthetic proteome instead of sampled peptides")
	proteins := flag.Int("proteins", 200, "protein count for -proteome")
	format := flag.String("format", "mgf", "library/query file format: mgf or msp")
	flag.Parse()

	var cfg msdata.Config
	switch *preset {
	case "iPRG2012":
		cfg = msdata.IPRG2012(*scale)
	case "HEK293":
		cfg = msdata.HEK293(*scale)
	default:
		fatal(fmt.Errorf("unknown preset %q", *preset))
	}
	cfg.Seed += *seed
	var (
		ds  *msdata.Dataset
		err error
	)
	if *proteome {
		pcfg := msdata.DefaultProteomeConfig()
		pcfg.NumProteins = *proteins
		pcfg.Seed += *seed
		cfg.NumReferences = 0
		ds, err = msdata.GenerateFromProteome(cfg, pcfg)
	} else {
		ds, err = msdata.Generate(cfg)
	}
	fatalIf(err)
	if *format != "mgf" && *format != "msp" {
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	writeSpectra = writerFor(*format)

	fatalIf(writeSpectra(*out+".library."+*format, ds.Library))
	fatalIf(writeSpectra(*out+".queries."+*format, ds.Queries))
	fatalIf(writeTruth(*out+".truth.tsv", ds))

	st := ds.Summarize()
	fmt.Printf("%s: %d queries (%d modified, %d foreign), %d targets + %d decoys\n",
		st.Name, st.NumQueries, st.ModifiedQueries, st.ForeignQueries,
		st.NumTargets, st.NumDecoys)
}

// writeSpectra is selected by the -format flag.
var writeSpectra = writerFor("mgf")

func writerFor(format string) func(string, []*spectrum.Spectrum) error {
	write := spectrum.WriteMGF
	if format == "msp" {
		write = spectrum.WriteMSP
	}
	return func(path string, spectra []*spectrum.Spectrum) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := write(f, spectra); err != nil {
			return err
		}
		return f.Close()
	}
}

func writeTruth(path string, ds *msdata.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "query_id\tpeptide\tmodified\tmod_name\tmass_shift")
	for _, q := range ds.Queries {
		gt := ds.Truth[q.ID]
		fmt.Fprintf(f, "%s\t%s\t%v\t%s\t%.6f\n",
			gt.QueryID, gt.Peptide, gt.Modified, gt.ModName, gt.MassShift)
	}
	return f.Close()
}

func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "omsgen: %v\n", err)
	os.Exit(1)
}
